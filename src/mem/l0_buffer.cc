#include "mem/l0_buffer.hh"

#include <cstring>

#include "common/bytes.hh"
#include "common/intmath.hh"
#include "common/logging.hh"

namespace l0vliw::mem
{

L0Buffer::L0Buffer(int num_entries, int subblock_bytes, int num_clusters)
    : numEntries(num_entries), subblockBytes(subblock_bytes),
      numClusters(num_clusters),
      blockBytes(static_cast<Addr>(subblock_bytes) * num_clusters)
{
    L0_ASSERT(subblockBytes > 0 && numClusters > 0, "bad L0 geometry");
    if (numEntries > 0) {
        entries.resize(numEntries);
        quick.assign(numEntries, kNoBlock);
    }
}

bool
L0Buffer::contains(const L0Entry &e, Addr addr, int size) const
{
    if (!e.valid)
        return false;
    // One unsigned compare rejects everything outside the block.
    if (addr - e.blockAddr >= blockBytes
        || addr + size > e.blockAddr + blockBytes)
        return false;
    if (e.kind == ir::MapHint::LinearMap) {
        Addr base = e.blockAddr + static_cast<Addr>(e.index) * subblockBytes;
        return addr >= base && addr + size <= base + subblockBytes;
    }
    // Interleaved: the access must land inside a single element whose
    // residue matches. Accesses wider than the interleaving factor span
    // elements held by other clusters, which Section 3.3 defines as an
    // L0 miss (L1 is always up to date).
    if (size > e.factor)
        return false;
    Addr off = addr - e.blockAddr;
    Addr first_elem = fastDiv(off, e.factor);
    Addr last_elem = fastDiv(off + size - 1, e.factor);
    if (first_elem != last_elem)
        return false;
    return static_cast<int>(fastMod(first_elem, numClusters)) == e.index;
}

int
L0Buffer::payloadOffset(const L0Entry &e, Addr addr, int size) const
{
    if (!contains(e, addr, size))
        return -1;
    return payloadOffsetUnchecked(e, addr);
}

int
L0Buffer::payloadOffsetUnchecked(const L0Entry &e, Addr addr) const
{
    if (e.kind == ir::MapHint::LinearMap) {
        Addr base = e.blockAddr + static_cast<Addr>(e.index) * subblockBytes;
        return static_cast<int>(addr - base);
    }
    Addr off = addr - e.blockAddr;
    Addr elem = fastDiv(off, e.factor);
    // Elements packed densely by residue.
    Addr slot = fastDiv(elem, numClusters);
    return static_cast<int>(slot * e.factor + fastMod(off, e.factor));
}

L0Lookup
L0Buffer::lookup(Addr addr, int size, std::uint8_t *out)
{
    L0Lookup res;
    L0Entry *best = nullptr;
    int best_idx = -1;
    for (std::size_t i = 0; i < quick.size(); ++i) {
        // Cheap block-range reject against the dense address array
        // before touching the entry itself (kNoBlock never passes).
        if (addr - quick[i] >= blockBytes)
            continue;
        L0Entry &e = entries[i];
        if (!contains(e, addr, size))
            continue;
        if (!best || e.lastUse > best->lastUse) {
            best = &e;
            best_idx = static_cast<int>(i);
        }
    }
    if (!best) {
        ++hot.misses;
        return res;
    }
    best->lastUse = ++useClock;
    res.hit = true;
    res.entry = best_idx;
    int off = payloadOffsetUnchecked(*best, addr);
    if (out)
        copySmall(out, best->data.data() + off, size);

    // Boundary detection for the POSITIVE / NEGATIVE prefetch hints:
    // did this access touch the subblock's extremal element?
    res.firstElement = off == 0;
    res.lastElement = off + size == subblockBytes;
    if (best->kind == ir::MapHint::InterleavedMap) {
        // The subblock's elements are packed densely; the extremal
        // elements are the first/last factor-sized slots.
        res.firstElement = off < best->factor;
        res.lastElement = off + size > subblockBytes - best->factor;
    }
    ++hot.hits;
    return res;
}

std::size_t
L0Buffer::victimIndex()
{
    if (unbounded()) {
        entries.emplace_back();
        entries.back().data.resize(subblockBytes);
        quick.push_back(kNoBlock);
        return entries.size() - 1;
    }
    std::size_t v = 0;
    for (std::size_t i = 0; i < entries.size(); ++i) {
        if (!entries[i].valid)
            return i;
        if (entries[i].lastUse < entries[v].lastUse)
            v = i;
    }
    ++hot.evictions;
    return v;
}

void
L0Buffer::fillLinear(Addr block_addr, int sub_index,
                     const std::uint8_t *sub_data)
{
    // Refill of a present subblock: refresh the data (it may be a
    // demand refill racing a prefetch); no new entry.
    for (std::size_t i = 0; i < quick.size(); ++i) {
        if (quick[i] != block_addr)
            continue;
        L0Entry &e = entries[i];
        if (e.kind == ir::MapHint::LinearMap && e.index == sub_index) {
            std::memcpy(e.data.data(), sub_data, subblockBytes);
            return;
        }
    }
    std::size_t vi = victimIndex();
    L0Entry &e = entries[vi];
    e.valid = true;
    e.blockAddr = block_addr;
    e.kind = ir::MapHint::LinearMap;
    e.index = sub_index;
    e.factor = 0;
    e.lastUse = ++useClock;
    if (e.data.size() != static_cast<std::size_t>(subblockBytes))
        e.data.resize(subblockBytes);
    std::memcpy(e.data.data(), sub_data, subblockBytes);
    syncQuick(vi);
    ++hot.fillsLinear;
}

void
L0Buffer::fillInterleaved(Addr block_addr, int factor, int residue,
                          const std::uint8_t *block_data)
{
    L0_ASSERT(factor > 0 && subblockBytes % factor == 0,
              "interleave factor %d incompatible with %d-byte subblocks",
              factor, subblockBytes);

    // Refill of a present subblock: refresh the data in place.
    for (std::size_t i = 0; i < quick.size(); ++i) {
        if (quick[i] != block_addr)
            continue;
        L0Entry &e = entries[i];
        if (e.kind == ir::MapHint::InterleavedMap && e.factor == factor
            && e.index == residue) {
            gatherResidue(e.data.data(), block_data, factor, residue);
            return;
        }
    }
    std::size_t vi = victimIndex();
    L0Entry &e = entries[vi];
    e.valid = true;
    e.blockAddr = block_addr;
    e.kind = ir::MapHint::InterleavedMap;
    e.index = residue;
    e.factor = factor;
    e.lastUse = ++useClock;
    if (e.data.size() != static_cast<std::size_t>(subblockBytes))
        e.data.resize(subblockBytes);
    gatherResidue(e.data.data(), block_data, factor, residue);
    syncQuick(vi);
    ++hot.fillsInterleaved;
}

void
L0Buffer::gatherResidue(std::uint8_t *dst, const std::uint8_t *block_data,
                        int factor, int residue) const
{
    // Pack this residue's elements of the block densely into dst.
    int slots = subblockBytes / factor;
    for (int s = 0; s < slots; ++s) {
        int elem = s * numClusters + residue;
        copySmall(dst + s * factor, block_data + elem * factor, factor);
    }
}

bool
L0Buffer::store(Addr addr, int size, const std::uint8_t *in)
{
    // Update the most recently used matching copy; invalidate the rest
    // (one write port, Section 4.1 intra-cluster coherence).
    L0Entry *update = nullptr;
    for (std::size_t i = 0; i < quick.size(); ++i) {
        if (addr - quick[i] >= blockBytes)
            continue;
        L0Entry &e = entries[i];
        if (!contains(e, addr, size))
            continue;
        if (!update || e.lastUse > update->lastUse)
            update = &e;
    }
    if (!update)
        return false;
    for (std::size_t i = 0; i < quick.size(); ++i) {
        if (addr - quick[i] >= blockBytes)
            continue;
        L0Entry &e = entries[i];
        if (&e != update && contains(e, addr, size)) {
            e.valid = false;
            syncQuick(i);
            ++hot.storeDupInvalidations;
        }
    }
    int off = payloadOffsetUnchecked(*update, addr);
    copySmall(update->data.data() + off, in, size);
    ++hot.storeUpdates;
    return true;
}

void
L0Buffer::invalidateMatching(Addr addr, int size)
{
    for (std::size_t i = 0; i < quick.size(); ++i) {
        if (addr - quick[i] >= blockBytes)
            continue;
        if (contains(entries[i], addr, size)) {
            entries[i].valid = false;
            syncQuick(i);
            ++hot.psrInvalidations;
        }
    }
}

void
L0Buffer::invalidateAll()
{
    for (auto &e : entries)
        e.valid = false;
    if (unbounded())
        entries.clear();
    quick.assign(entries.size(), kNoBlock);
    ++hot.flushes;
}

bool
L0Buffer::hasLinear(Addr block_addr, int sub_index) const
{
    for (const auto &e : entries)
        if (e.valid && e.kind == ir::MapHint::LinearMap
                && e.blockAddr == block_addr && e.index == sub_index)
            return true;
    return false;
}

bool
L0Buffer::hasInterleaved(Addr block_addr, int factor, int residue) const
{
    for (const auto &e : entries)
        if (e.valid && e.kind == ir::MapHint::InterleavedMap
                && e.blockAddr == block_addr && e.factor == factor
                && e.index == residue)
            return true;
    return false;
}

void
L0Buffer::syncStats() const
{
    statSet.setNonzero("l0_hits", hot.hits);
    statSet.setNonzero("l0_misses", hot.misses);
    statSet.setNonzero("l0_evictions", hot.evictions);
    statSet.setNonzero("l0_fills_linear", hot.fillsLinear);
    statSet.setNonzero("l0_fills_interleaved", hot.fillsInterleaved);
    statSet.setNonzero("l0_store_updates", hot.storeUpdates);
    statSet.setNonzero("l0_store_dup_invalidations", hot.storeDupInvalidations);
    statSet.setNonzero("l0_psr_invalidations", hot.psrInvalidations);
    statSet.setNonzero("l0_flushes", hot.flushes);
}

int
L0Buffer::validEntries() const
{
    int n = 0;
    for (const auto &e : entries)
        n += e.valid ? 1 : 0;
    return n;
}

} // namespace l0vliw::mem
