#include "mem/l0_buffer.hh"

#include <cstring>

#include "common/logging.hh"

namespace l0vliw::mem
{

L0Buffer::L0Buffer(int num_entries, int subblock_bytes, int num_clusters)
    : numEntries(num_entries), subblockBytes(subblock_bytes),
      numClusters(num_clusters)
{
    L0_ASSERT(subblockBytes > 0 && numClusters > 0, "bad L0 geometry");
    if (numEntries > 0)
        entries.resize(numEntries);
}

bool
L0Buffer::contains(const L0Entry &e, Addr addr, int size) const
{
    if (!e.valid)
        return false;
    const Addr block_bytes =
        static_cast<Addr>(subblockBytes) * numClusters;
    if (addr < e.blockAddr || addr + size > e.blockAddr + block_bytes)
        return false;
    if (e.kind == ir::MapHint::LinearMap) {
        Addr base = e.blockAddr + static_cast<Addr>(e.index) * subblockBytes;
        return addr >= base && addr + size <= base + subblockBytes;
    }
    // Interleaved: the access must land inside a single element whose
    // residue matches. Accesses wider than the interleaving factor span
    // elements held by other clusters, which Section 3.3 defines as an
    // L0 miss (L1 is always up to date).
    if (size > e.factor)
        return false;
    Addr off = addr - e.blockAddr;
    Addr first_elem = off / e.factor;
    Addr last_elem = (off + size - 1) / e.factor;
    if (first_elem != last_elem)
        return false;
    return static_cast<int>(first_elem % numClusters) == e.index;
}

int
L0Buffer::payloadOffset(const L0Entry &e, Addr addr, int size) const
{
    if (!contains(e, addr, size))
        return -1;
    if (e.kind == ir::MapHint::LinearMap) {
        Addr base = e.blockAddr + static_cast<Addr>(e.index) * subblockBytes;
        return static_cast<int>(addr - base);
    }
    Addr off = addr - e.blockAddr;
    Addr elem = off / e.factor;
    Addr slot = elem / numClusters; // elements packed densely by residue
    return static_cast<int>(slot * e.factor + off % e.factor);
}

L0Lookup
L0Buffer::lookup(Addr addr, int size, std::uint8_t *out)
{
    L0Lookup res;
    L0Entry *best = nullptr;
    int best_idx = -1;
    for (std::size_t i = 0; i < entries.size(); ++i) {
        L0Entry &e = entries[i];
        if (!contains(e, addr, size))
            continue;
        if (!best || e.lastUse > best->lastUse) {
            best = &e;
            best_idx = static_cast<int>(i);
        }
    }
    if (!best) {
        statSet.add("l0_misses");
        return res;
    }
    best->lastUse = ++useClock;
    res.hit = true;
    res.entry = best_idx;
    int off = payloadOffset(*best, addr, size);
    if (out)
        std::memcpy(out, best->data.data() + off, size);

    // Boundary detection for the POSITIVE / NEGATIVE prefetch hints:
    // did this access touch the subblock's extremal element?
    res.firstElement = off == 0;
    res.lastElement = off + size == subblockBytes;
    if (best->kind == ir::MapHint::InterleavedMap) {
        // The subblock's elements are packed densely; the extremal
        // elements are the first/last factor-sized slots.
        res.firstElement = off < best->factor;
        res.lastElement = off + size > subblockBytes - best->factor;
    }
    statSet.add("l0_hits");
    return res;
}

L0Entry &
L0Buffer::victim()
{
    if (unbounded()) {
        entries.emplace_back();
        entries.back().data.resize(subblockBytes);
        return entries.back();
    }
    L0Entry *v = &entries[0];
    for (auto &e : entries) {
        if (!e.valid)
            return e;
        if (e.lastUse < v->lastUse)
            v = &e;
    }
    statSet.add("l0_evictions");
    return *v;
}

void
L0Buffer::fillLinear(Addr block_addr, int sub_index,
                     const std::uint8_t *sub_data)
{
    if (hasLinear(block_addr, sub_index)) {
        // Refill of a present subblock: refresh the data (it may be a
        // demand refill racing a prefetch); no new entry.
        for (auto &e : entries) {
            if (e.valid && e.kind == ir::MapHint::LinearMap
                    && e.blockAddr == block_addr && e.index == sub_index) {
                std::memcpy(e.data.data(), sub_data, subblockBytes);
                return;
            }
        }
    }
    L0Entry &e = victim();
    e.valid = true;
    e.blockAddr = block_addr;
    e.kind = ir::MapHint::LinearMap;
    e.index = sub_index;
    e.factor = 0;
    e.lastUse = ++useClock;
    if (e.data.size() != static_cast<std::size_t>(subblockBytes))
        e.data.resize(subblockBytes);
    std::memcpy(e.data.data(), sub_data, subblockBytes);
    statSet.add("l0_fills_linear");
}

void
L0Buffer::fillInterleaved(Addr block_addr, int factor, int residue,
                          const std::uint8_t *block_data)
{
    L0_ASSERT(factor > 0 && subblockBytes % factor == 0,
              "interleave factor %d incompatible with %d-byte subblocks",
              factor, subblockBytes);
    // Gather this residue's elements from the whole block.
    std::vector<std::uint8_t> packed(subblockBytes);
    int slots = subblockBytes / factor;
    for (int s = 0; s < slots; ++s) {
        int elem = s * numClusters + residue;
        std::memcpy(packed.data() + s * factor,
                    block_data + elem * factor, factor);
    }

    for (auto &e : entries) {
        if (e.valid && e.kind == ir::MapHint::InterleavedMap
                && e.blockAddr == block_addr && e.factor == factor
                && e.index == residue) {
            std::memcpy(e.data.data(), packed.data(), subblockBytes);
            return;
        }
    }
    L0Entry &e = victim();
    e.valid = true;
    e.blockAddr = block_addr;
    e.kind = ir::MapHint::InterleavedMap;
    e.index = residue;
    e.factor = factor;
    e.lastUse = ++useClock;
    if (e.data.size() != static_cast<std::size_t>(subblockBytes))
        e.data.resize(subblockBytes);
    std::memcpy(e.data.data(), packed.data(), subblockBytes);
    statSet.add("l0_fills_interleaved");
}

bool
L0Buffer::store(Addr addr, int size, const std::uint8_t *in)
{
    // Update the most recently used matching copy; invalidate the rest
    // (one write port, Section 4.1 intra-cluster coherence).
    L0Entry *update = nullptr;
    for (auto &e : entries) {
        if (!contains(e, addr, size))
            continue;
        if (!update || e.lastUse > update->lastUse)
            update = &e;
    }
    if (!update)
        return false;
    for (auto &e : entries) {
        if (&e != update && contains(e, addr, size)) {
            e.valid = false;
            statSet.add("l0_store_dup_invalidations");
        }
    }
    int off = payloadOffset(*update, addr, size);
    std::memcpy(update->data.data() + off, in, size);
    statSet.add("l0_store_updates");
    return true;
}

void
L0Buffer::invalidateMatching(Addr addr, int size)
{
    for (auto &e : entries) {
        if (contains(e, addr, size)) {
            e.valid = false;
            statSet.add("l0_psr_invalidations");
        }
    }
}

void
L0Buffer::invalidateAll()
{
    for (auto &e : entries)
        e.valid = false;
    if (unbounded())
        entries.clear();
    statSet.add("l0_flushes");
}

bool
L0Buffer::hasLinear(Addr block_addr, int sub_index) const
{
    for (const auto &e : entries)
        if (e.valid && e.kind == ir::MapHint::LinearMap
                && e.blockAddr == block_addr && e.index == sub_index)
            return true;
    return false;
}

bool
L0Buffer::hasInterleaved(Addr block_addr, int factor, int residue) const
{
    for (const auto &e : entries)
        if (e.valid && e.kind == ir::MapHint::InterleavedMap
                && e.blockAddr == block_addr && e.factor == factor
                && e.index == residue)
            return true;
    return false;
}

int
L0Buffer::validEntries() const
{
    int n = 0;
    for (const auto &e : entries)
        n += e.valid ? 1 : 0;
    return n;
}

} // namespace l0vliw::mem
