/**
 * @file
 * Unified L1 with no L0 buffers: the paper's normalisation baseline.
 */

#ifndef L0VLIW_MEM_UNIFIED_HH
#define L0VLIW_MEM_UNIFIED_HH

#include <vector>

#include "mem/bus.hh"
#include "mem/mem_system.hh"
#include "mem/tag_cache.hh"

namespace l0vliw::mem
{

/**
 * Every cluster reaches the centralized L1 over its own bus; the
 * 6-cycle latency of Table 2 already includes the request/response
 * wire delay. L1 is write-through to the backing store, so data
 * correctness never depends on L1 content (tags carry the timing).
 */
class UnifiedMemSystem final : public MemSystem
{
  public:
    explicit UnifiedMemSystem(const machine::MachineConfig &config);

    using MemSystem::access;
    MemAccessResult access(const MemAccess &acc, Cycle now,
                           const std::uint8_t *store_data,
                           std::uint8_t *load_out,
                           AccessScratch &scratch) override;

  private:
    void syncStats() const override;

    /** Per-access counters as plain integers (see L0Buffer). */
    struct HotCounters
    {
        std::uint64_t l1Hits = 0;
        std::uint64_t l1Misses = 0;
        std::uint64_t l1StoreHits = 0;
        std::uint64_t l1StoreMisses = 0;
    };

    TagCache l1;
    std::vector<Bus> buses; // one per cluster
    HotCounters hot;
};

} // namespace l0vliw::mem

#endif // L0VLIW_MEM_UNIFIED_HH
