/**
 * @file
 * Byte-addressed backing store standing in for L2 / main memory.
 *
 * Table 2 gives L2 a fixed 10-cycle latency and it always hits, so no
 * tag state is needed — only data. Every level above is write-through
 * in this reproduction, so the backing store always holds the current
 * value of every byte; stale data can only live in L0 buffers, which
 * is exactly the coherence hazard the paper's compiler manages.
 *
 * Unwritten bytes read as a deterministic per-address pattern so that
 * cold loads are reproducible and checkable by the oracle.
 */

#ifndef L0VLIW_MEM_BACKING_HH
#define L0VLIW_MEM_BACKING_HH

#include <cstdint>
#include <unordered_map>
#include <vector>

#include "common/types.hh"

namespace l0vliw::mem
{

/** Sparse paged byte store with deterministic default contents. */
class Backing
{
  public:
    /** Read @p size bytes at @p addr into @p out. */
    void read(Addr addr, std::uint8_t *out, int size) const;

    /** Write @p size bytes from @p in at @p addr. */
    void write(Addr addr, const std::uint8_t *in, int size);

    /** The deterministic content of an unwritten byte. */
    static std::uint8_t defaultByte(Addr addr);

    /** Drop all written data (reset to the default pattern). */
    void
    clear()
    {
        pages.clear();
        cachedId = kNoPage;
        cachedPage = nullptr;
    }

  private:
    static constexpr Addr pageBytes = 4096;
    static constexpr Addr kNoPage = ~0ULL;

    struct Page
    {
        std::vector<std::uint8_t> data;
    };

    /** Get the page holding @p addr, materialising it on demand. */
    Page &pageFor(Addr addr);

    /** Materialised page containing @p addr, or null. */
    const Page *findPage(Addr addr) const;

    std::unordered_map<Addr, Page> pages;
    /**
     * One-entry page cache: accesses stream sequentially, so almost
     * every access lands on the last page touched. Pointers into the
     * node-based map stay valid until clear().
     */
    mutable Addr cachedId = kNoPage;
    mutable Page *cachedPage = nullptr;
};

} // namespace l0vliw::mem

#endif // L0VLIW_MEM_BACKING_HH
