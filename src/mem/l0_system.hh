/**
 * @file
 * Unified L1 plus flexible compiler-managed L0 buffers: the paper's
 * proposed architecture (Section 3).
 */

#ifndef L0VLIW_MEM_L0_SYSTEM_HH
#define L0VLIW_MEM_L0_SYSTEM_HH

#include <vector>

#include "mem/bus.hh"
#include "mem/l0_buffer.hh"
#include "mem/mem_system.hh"
#include "mem/tag_cache.hh"

namespace l0vliw::mem
{

/**
 * Timing and data model:
 *
 *  - SEQ_ACCESS loads probe the local L0 (1 cycle); on a miss the
 *    request is forwarded on the cluster bus the next cycle — the
 *    compiler's SEQ legality rule guarantees no demand access competes
 *    for that slot.
 *  - PAR_ACCESS loads launch the bus/L1 access in parallel with the L0
 *    probe; an L0 hit drops the L1 reply.
 *  - A miss with LINEAR_MAP fills one subblock into the accessing
 *    cluster. A miss with INTERLEAVED_MAP reads the whole L1 block,
 *    pays one cycle of shift/interleave logic, and scatters all N
 *    residues across the N clusters' buffers.
 *  - Fills are in flight until their ready cycle; an access covered by
 *    an in-flight fill waits for it (no duplicate L1 request) and is
 *    counted as a miss — this is the "prefetched too late" stall the
 *    paper reports for epicdec and rasta.
 *  - POSITIVE/NEGATIVE prefetch hints trigger when a hit touches the
 *    last/first element of a subblock; explicit Prefetch operations
 *    arrive through access() with isPrefetch set.
 *  - Stores are write-through and never allocate: they update at most
 *    one matching local L0 copy (PAR_ACCESS) and the L1/backing store;
 *    PSR replicas only invalidate matching local entries.
 */
class L0MemSystem final : public MemSystem
{
  public:
    explicit L0MemSystem(const machine::MachineConfig &config);

    using MemSystem::access;
    MemAccessResult access(const MemAccess &acc, Cycle now,
                           const std::uint8_t *store_data,
                           std::uint8_t *load_out,
                           AccessScratch &scratch) override;

    void endLoop(Cycle now) override;

    /** The L0 buffer of cluster @p c (tests and stats). */
    L0Buffer &l0(ClusterId c) { return l0s[c]; }

    /** Merged L0 statistics across clusters. */
    StatSet l0Stats() const;

  private:
    struct PendingFill
    {
        Cycle ready = 0;
        bool interleaved = false;
        Addr blockAddr = 0;
        int subIndex = 0;       ///< linear: sub-slot index
        int factor = 0;         ///< interleaved: element granularity
        int firstResidue = 0;   ///< interleaved: residue for firstCluster
        ClusterId firstCluster = 0;
    };

    /**
     * Apply every pending fill whose data has arrived by @p now. The
     * empty check is inline: this runs at the top of every access and
     * the pending list is empty most of the time.
     */
    void
    commitFills(Cycle now, AccessScratch &scratch)
    {
        if (!pending.empty())
            commitFillsSlow(now, scratch);
    }

    void commitFillsSlow(Cycle now, AccessScratch &scratch);

    /** True if an in-flight fill will cover [addr, addr+size). */
    const PendingFill *coveringFill(const MemAccess &acc) const;

    /** L1 lookup + latency for one block access. */
    Cycle l1AccessLatency(Addr addr, bool allocate);

    /**
     * Launch a fill for the access's block using an already-granted
     * bus slot. @return the data-ready cycle (grant + L1 latency +
     * interleave penalty if any).
     */
    Cycle startFill(const MemAccess &acc, Cycle grant);

    /**
     * Hint-triggered prefetch of the next/previous subblock. The
     * trigger test is inline: it runs on every L0 hit and almost
     * always declines (no hint, or not the boundary element).
     */
    void
    triggerHintPrefetch(const MemAccess &acc, const L0Lookup &hit,
                        Cycle now)
    {
        if (acc.prefetch == ir::PrefetchHint::NoPrefetch)
            return;
        bool positive = acc.prefetch == ir::PrefetchHint::Positive;
        if (positive ? hit.lastElement : hit.firstElement)
            hintPrefetchSlow(acc, positive, now);
    }

    /** The fetch half of triggerHintPrefetch (boundary hit). */
    void hintPrefetchSlow(const MemAccess &acc, bool positive, Cycle now);

    /** Queue a linear subblock prefetch if not present or in flight. */
    void prefetchLinear(Addr block_addr, int sub_index, ClusterId cluster,
                        Cycle now);

    /** Queue an interleaved whole-block prefetch. */
    void prefetchInterleaved(Addr block_addr, int factor, int first_residue,
                             ClusterId first_cluster, Cycle now);

    void syncStats() const override;

    /** Per-access counters as plain integers (see L0Buffer). */
    struct HotCounters
    {
        std::uint64_t l1Hits = 0;
        std::uint64_t l1Misses = 0;
        std::uint64_t l1StoreHits = 0;
        std::uint64_t l1StoreMisses = 0;
        std::uint64_t pendingWaits = 0;
        std::uint64_t psrFillCancels = 0;
        std::uint64_t psrReplicaStores = 0;
        std::uint64_t explicitPrefetches = 0;
        std::uint64_t hintPrefetches = 0;
        std::uint64_t prefetchFillsLinear = 0;
        std::uint64_t prefetchFillsInterleaved = 0;
    };

    TagCache l1;
    HotCounters hot;
    std::vector<Bus> buses;
    std::vector<L0Buffer> l0s;
    std::vector<PendingFill> pending;
};

} // namespace l0vliw::mem

#endif // L0VLIW_MEM_L0_SYSTEM_HH
