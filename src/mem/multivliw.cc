#include "mem/multivliw.hh"

#include "common/logging.hh"

namespace l0vliw::mem
{

MultiVliwMemSystem::MultiVliwMemSystem(const machine::MachineConfig &config)
    : MemSystem(config)
{
    // Each cluster gets a full-size slice: dynamic replication means a
    // block can live in all four slices at once, and the MultiVLIW
    // design pays for that in area — the very cost argument Section
    // 5.3 makes against it. Splitting the unified capacity four ways
    // would instead model a machine the MultiVLIW paper never built.
    for (int c = 0; c < config.numClusters; ++c)
        slices.emplace_back(config.l1SizeBytes, config.l1Assoc,
                            config.l1BlockBytes);
}

MemAccessResult
MultiVliwMemSystem::access(const MemAccess &acc, Cycle now,
                           const std::uint8_t *store_data,
                           std::uint8_t *load_out, AccessScratch &scratch)
{
    (void)scratch; // no per-access staging on this architecture
    MemAccessResult res;
    TagCache &local = slices[acc.cluster];

    if (!acc.isLoad && !acc.isPrefetch) {
        L0_ASSERT(store_data != nullptr, "store without data");
        // Write-through invalidate: update the local slice if present,
        // invalidate every remote copy, always update backing.
        local.access(acc.addr, /*allocate=*/false);
        for (int c = 0; c < cfg.numClusters; ++c) {
            if (c == acc.cluster)
                continue;
            if (slices[c].invalidate(acc.addr))
                ++hot.storeInvalidations;
        }
        back.write(acc.addr, store_data, acc.size);
        res.ready = now + 1;
        return res;
    }

    // Loads and prefetches.
    if (local.access(acc.addr, /*allocate=*/false)) {
        ++hot.localHits;
        res.ready = now + cfg.mvLocalHitLatency;
        res.local = true;
        if (acc.isLoad && load_out)
            back.read(acc.addr, load_out, acc.size);
        return res;
    }

    // Snoop the other slices: a remote copy supplies the block and the
    // local slice replicates it (S state).
    bool remote = false;
    for (int c = 0; c < cfg.numClusters && !remote; ++c)
        remote = c != acc.cluster && slices[c].present(acc.addr);

    local.access(acc.addr, /*allocate=*/true);
    if (remote) {
        ++hot.remoteHits;
        res.ready = now + cfg.mvLocalHitLatency + cfg.mvRemoteTransfer;
        res.local = false;
    } else {
        ++hot.l2Fills;
        res.ready = now + cfg.mvLocalHitLatency + cfg.l2Latency;
        res.local = false;
        res.l1Hit = false;
    }
    if (cfg.sliceSeqPrefetch) {
        // Sequential tagged prefetch: pull the next block alongside the
        // demand fill so streaming misses are charged once per stream,
        // not once per block (see MachineConfig::sliceSeqPrefetch).
        local.access(acc.addr + cfg.l1BlockBytes, /*allocate=*/true);
    }
    if (acc.isLoad && load_out)
        back.read(acc.addr, load_out, acc.size);
    return res;
}

void
MultiVliwMemSystem::syncStats() const
{
    statSet.setNonzero("mv_store_invalidations", hot.storeInvalidations);
    statSet.setNonzero("mv_local_hits", hot.localHits);
    statSet.setNonzero("mv_remote_hits", hot.remoteHits);
    statSet.setNonzero("mv_l2_fills", hot.l2Fills);
}

} // namespace l0vliw::mem
