/**
 * @file
 * Word-interleaved distributed cache with Attraction Buffers
 * (Section 5.3, after Gibert et al., MICRO-2002).
 *
 * Words of wiWordBytes are statically round-robined across the
 * clusters' cache slices: owner(addr) = (addr / wordBytes) mod N. An
 * access from the owner cluster is local; any other cluster pays the
 * inter-cluster round trip. Each cluster also has a small fully
 * associative Attraction Buffer that caches remotely-mapped words;
 * hardware keeps ABs coherent (stores invalidate remote AB copies), so
 * — unlike the L0 buffers — they need no compiler management, but they
 * are inflexible: the static word-to-cluster binding stays.
 */

#ifndef L0VLIW_MEM_INTERLEAVED_HH
#define L0VLIW_MEM_INTERLEAVED_HH

#include <vector>

#include "mem/mem_system.hh"
#include "mem/tag_cache.hh"

namespace l0vliw::mem
{

/** Word-interleaved slices plus Attraction Buffers. */
class InterleavedMemSystem final : public MemSystem
{
  public:
    explicit InterleavedMemSystem(const machine::MachineConfig &config);

    using MemSystem::access;
    MemAccessResult access(const MemAccess &acc, Cycle now,
                           const std::uint8_t *store_data,
                           std::uint8_t *load_out,
                           AccessScratch &scratch) override;

    /** Cluster statically owning the word at @p addr. */
    ClusterId owner(Addr addr) const
    {
        return static_cast<ClusterId>(
            (addr / cfg.wiWordBytes) % cfg.numClusters);
    }

  private:
    /**
     * Slice-local address: word index within the owner's slice, with
     * the byte offset preserved, so the slice's set indexing sees a
     * dense address space.
     */
    Addr localAddr(Addr addr) const;

    void syncStats() const override;

    /** Per-access counters as plain integers (see L0Buffer). */
    struct HotCounters
    {
        std::uint64_t abStoreInvalidations = 0;
        std::uint64_t localStores = 0;
        std::uint64_t remoteStores = 0;
        std::uint64_t localHits = 0;
        std::uint64_t localMisses = 0;
        std::uint64_t abHits = 0;
        std::uint64_t remoteAccesses = 0;
    };

    std::vector<TagCache> slices;
    std::vector<TagCache> abs; // attraction buffers (word-grained)
    HotCounters hot;
};

} // namespace l0vliw::mem

#endif // L0VLIW_MEM_INTERLEAVED_HH
