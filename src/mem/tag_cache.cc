#include "mem/tag_cache.hh"

#include "common/intmath.hh"
#include "common/logging.hh"

namespace l0vliw::mem
{

TagCache::TagCache(std::uint64_t size_bytes, int assoc, int block_bytes)
    : sets(static_cast<int>(size_bytes / (assoc * block_bytes))),
      ways(assoc), blockBytes(block_bytes)
{
    L0_ASSERT(sets >= 1 && ways >= 1, "cache too small");
    L0_ASSERT((blockBytes & (blockBytes - 1)) == 0,
              "block size must be a power of two");
    store.resize(static_cast<std::size_t>(sets) * ways);
}

TagCache
TagCache::fullyAssociative(int entries, int block_bytes)
{
    return TagCache(static_cast<std::uint64_t>(entries) * block_bytes,
                    entries, block_bytes);
}

int
TagCache::setIndex(Addr addr) const
{
    return static_cast<int>(fastMod(fastDiv(addr, blockBytes), sets));
}

bool
TagCache::access(Addr addr, bool allocate)
{
    Addr tag = blockAddr(addr);
    int s = setIndex(addr);
    Way *base = &store[static_cast<std::size_t>(s) * ways];
    Way *victim = base;
    for (int w = 0; w < ways; ++w) {
        Way &way = base[w];
        if (way.valid && way.tag == tag) {
            way.lastUse = ++useClock;
            return true;
        }
        if (!way.valid) {
            victim = &way;
        } else if (victim->valid && way.lastUse < victim->lastUse) {
            victim = &way;
        }
    }
    if (allocate) {
        victim->valid = true;
        victim->tag = tag;
        victim->lastUse = ++useClock;
    }
    return false;
}

bool
TagCache::present(Addr addr) const
{
    Addr tag = blockAddr(addr);
    int s = setIndex(addr);
    const Way *base = &store[static_cast<std::size_t>(s) * ways];
    for (int w = 0; w < ways; ++w)
        if (base[w].valid && base[w].tag == tag)
            return true;
    return false;
}

bool
TagCache::invalidate(Addr addr)
{
    Addr tag = blockAddr(addr);
    int s = setIndex(addr);
    Way *base = &store[static_cast<std::size_t>(s) * ways];
    for (int w = 0; w < ways; ++w) {
        if (base[w].valid && base[w].tag == tag) {
            base[w].valid = false;
            return true;
        }
    }
    return false;
}

void
TagCache::clear()
{
    for (auto &w : store)
        w.valid = false;
}

} // namespace l0vliw::mem
