/**
 * @file
 * MultiVLIW baseline: snoop-coherent distributed L1 (Section 5.3,
 * after Sanchez & Gonzalez, MICRO-2000).
 *
 * Each cluster holds an L1 slice of (total L1 size / N). Slices are
 * kept coherent with a write-through invalidate snoop protocol — a
 * simplification of the paper's MSI that preserves the two behaviours
 * Figure 7 depends on: data is dynamically replicated into the slices
 * of the clusters that use it (high local-hit rates), and writes to
 * shared data invalidate remote copies (coherence ping-pong cost).
 * Write-through keeps the backing store current, so no stale value can
 * ever be observed — matching the hardware-coherence guarantee of the
 * original design.
 */

#ifndef L0VLIW_MEM_MULTIVLIW_HH
#define L0VLIW_MEM_MULTIVLIW_HH

#include <vector>

#include "mem/mem_system.hh"
#include "mem/tag_cache.hh"

namespace l0vliw::mem
{

/** Snoop-coherent distributed L1 slices. */
class MultiVliwMemSystem : public MemSystem
{
  public:
    explicit MultiVliwMemSystem(const machine::MachineConfig &config);

    MemAccessResult access(const MemAccess &acc, Cycle now,
                           const std::uint8_t *store_data,
                           std::uint8_t *load_out) override;

  private:
    std::vector<TagCache> slices; // one per cluster
};

} // namespace l0vliw::mem

#endif // L0VLIW_MEM_MULTIVLIW_HH
