/**
 * @file
 * MultiVLIW baseline: snoop-coherent distributed L1 (Section 5.3,
 * after Sanchez & Gonzalez, MICRO-2000).
 *
 * Each cluster holds an L1 slice of (total L1 size / N). Slices are
 * kept coherent with a write-through invalidate snoop protocol — a
 * simplification of the paper's MSI that preserves the two behaviours
 * Figure 7 depends on: data is dynamically replicated into the slices
 * of the clusters that use it (high local-hit rates), and writes to
 * shared data invalidate remote copies (coherence ping-pong cost).
 * Write-through keeps the backing store current, so no stale value can
 * ever be observed — matching the hardware-coherence guarantee of the
 * original design.
 */

#ifndef L0VLIW_MEM_MULTIVLIW_HH
#define L0VLIW_MEM_MULTIVLIW_HH

#include <vector>

#include "mem/mem_system.hh"
#include "mem/tag_cache.hh"

namespace l0vliw::mem
{

/** Snoop-coherent distributed L1 slices. */
class MultiVliwMemSystem final : public MemSystem
{
  public:
    explicit MultiVliwMemSystem(const machine::MachineConfig &config);

    using MemSystem::access;
    MemAccessResult access(const MemAccess &acc, Cycle now,
                           const std::uint8_t *store_data,
                           std::uint8_t *load_out,
                           AccessScratch &scratch) override;

  private:
    void syncStats() const override;

    /** Per-access counters as plain integers (see L0Buffer). */
    struct HotCounters
    {
        std::uint64_t storeInvalidations = 0;
        std::uint64_t localHits = 0;
        std::uint64_t remoteHits = 0;
        std::uint64_t l2Fills = 0;
    };

    std::vector<TagCache> slices; // one per cluster
    HotCounters hot;
};

} // namespace l0vliw::mem

#endif // L0VLIW_MEM_MULTIVLIW_HH
