#include "mem/backing.hh"

#include <algorithm>
#include <cstring>

#include "common/bytes.hh"

namespace l0vliw::mem
{

std::uint8_t
Backing::defaultByte(Addr addr)
{
    // Cheap per-byte hash; any fixed mixing function works as long as
    // the oracle uses the same one.
    std::uint64_t z = addr + 0x9e3779b97f4a7c15ULL;
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
    return static_cast<std::uint8_t>(z ^ (z >> 31));
}

Backing::Page &
Backing::pageFor(Addr addr)
{
    Addr page_id = addr / pageBytes;
    if (page_id == cachedId)
        return *cachedPage;
    auto it = pages.find(page_id);
    if (it == pages.end()) {
        Page p;
        p.data.resize(pageBytes);
        Addr base = page_id * pageBytes;
        for (Addr i = 0; i < pageBytes; ++i)
            p.data[i] = defaultByte(base + i);
        it = pages.emplace(page_id, std::move(p)).first;
    }
    cachedId = page_id;
    cachedPage = &it->second;
    return it->second;
}

const Backing::Page *
Backing::findPage(Addr addr) const
{
    Addr page_id = addr / pageBytes;
    if (page_id == cachedId)
        return cachedPage;
    auto it = pages.find(page_id);
    if (it == pages.end())
        return nullptr;
    cachedId = page_id;
    cachedPage = const_cast<Page *>(&it->second);
    return &it->second;
}

void
Backing::read(Addr addr, std::uint8_t *out, int size) const
{
    // Page-span (not per-byte) resolution: one lookup per page touched,
    // and accesses of at most 8 bytes touch at most two.
    while (size > 0) {
        Addr off = addr % pageBytes;
        int n = static_cast<int>(
            std::min<Addr>(size, pageBytes - off));
        if (const Page *p = findPage(addr)) {
            copySmall(out, p->data.data() + off, n);
        } else {
            for (int i = 0; i < n; ++i)
                out[i] = defaultByte(addr + i);
        }
        addr += n;
        out += n;
        size -= n;
    }
}

void
Backing::write(Addr addr, const std::uint8_t *in, int size)
{
    while (size > 0) {
        Addr off = addr % pageBytes;
        int n = static_cast<int>(
            std::min<Addr>(size, pageBytes - off));
        copySmall(pageFor(addr).data.data() + off, in, n);
        addr += n;
        in += n;
        size -= n;
    }
}

} // namespace l0vliw::mem
