#include "mem/backing.hh"

namespace l0vliw::mem
{

std::uint8_t
Backing::defaultByte(Addr addr)
{
    // Cheap per-byte hash; any fixed mixing function works as long as
    // the oracle uses the same one.
    std::uint64_t z = addr + 0x9e3779b97f4a7c15ULL;
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
    return static_cast<std::uint8_t>(z ^ (z >> 31));
}

Backing::Page &
Backing::pageFor(Addr addr)
{
    Addr page_id = addr / pageBytes;
    auto it = pages.find(page_id);
    if (it == pages.end()) {
        Page p;
        p.data.resize(pageBytes);
        Addr base = page_id * pageBytes;
        for (Addr i = 0; i < pageBytes; ++i)
            p.data[i] = defaultByte(base + i);
        it = pages.emplace(page_id, std::move(p)).first;
    }
    return it->second;
}

void
Backing::read(Addr addr, std::uint8_t *out, int size) const
{
    for (int i = 0; i < size; ++i) {
        Addr a = addr + i;
        auto it = pages.find(a / pageBytes);
        out[i] = it == pages.end() ? defaultByte(a)
                                   : it->second.data[a % pageBytes];
    }
}

void
Backing::write(Addr addr, const std::uint8_t *in, int size)
{
    for (int i = 0; i < size; ++i) {
        Addr a = addr + i;
        pageFor(a).data[a % pageBytes] = in[i];
    }
}

} // namespace l0vliw::mem
