#include "mem/interleaved.hh"

#include "common/logging.hh"

namespace l0vliw::mem
{

InterleavedMemSystem::InterleavedMemSystem(
        const machine::MachineConfig &config)
    : MemSystem(config)
{
    int slice_bytes = config.l1SizeBytes / config.numClusters;
    // Slices cache their share of each block; 8-byte slice lines keep
    // the geometry comparable to the L0 subblocks.
    for (int c = 0; c < config.numClusters; ++c) {
        slices.emplace_back(slice_bytes, config.l1Assoc, 8);
        abs.push_back(TagCache::fullyAssociative(config.abEntries,
                                                 config.wiWordBytes));
    }
}

Addr
InterleavedMemSystem::localAddr(Addr addr) const
{
    Addr word = addr / cfg.wiWordBytes;
    Addr local_word = word / cfg.numClusters;
    return local_word * cfg.wiWordBytes + addr % cfg.wiWordBytes;
}

MemAccessResult
InterleavedMemSystem::access(const MemAccess &acc, Cycle now,
                             const std::uint8_t *store_data,
                             std::uint8_t *load_out, AccessScratch &scratch)
{
    (void)scratch; // no per-access staging on this architecture
    MemAccessResult res;
    ClusterId home = owner(acc.addr);
    // Accesses spanning an ownership boundary involve two clusters;
    // they behave like remote accesses (rare: only misaligned or
    // 8-byte accesses can span 4-byte words).
    bool spans = owner(acc.addr + acc.size - 1) != home;

    if (!acc.isLoad && !acc.isPrefetch) {
        L0_ASSERT(store_data != nullptr, "store without data");
        // Update the home slice (no allocate), write through backing,
        // keep ABs coherent: the writer's own AB copy is updated
        // in place (same data path), every remote AB copy is dropped.
        slices[home].access(localAddr(acc.addr), /*allocate=*/false);
        for (int c = 0; c < cfg.numClusters; ++c) {
            if (c == acc.cluster)
                continue;
            if (abs[c].invalidate(acc.addr))
                ++hot.abStoreInvalidations;
        }
        back.write(acc.addr, store_data, acc.size);
        ++(home == acc.cluster ? hot.localStores : hot.remoteStores);
        res.ready = now + 1;
        res.local = home == acc.cluster;
        return res;
    }

    // Loads and prefetches.
    if (home == acc.cluster && !spans) {
        bool hit = slices[home].access(localAddr(acc.addr),
                                       /*allocate=*/true);
        ++(hit ? hot.localHits : hot.localMisses);
        res.ready = now + cfg.wiLocalHitLatency
                    + (hit ? 0 : cfg.l2Latency);
        res.local = true;
        res.l1Hit = hit;
        if (!hit && cfg.sliceSeqPrefetch) {
            // Sequential tagged prefetch within the slice's own
            // (home-compacted) address space.
            slices[home].access(localAddr(acc.addr) + 8,
                                /*allocate=*/true);
        }
    } else {
        // Remote word: try the local Attraction Buffer first.
        if (abs[acc.cluster].access(acc.addr, /*allocate=*/false)) {
            ++hot.abHits;
            res.ready = now + cfg.wiLocalHitLatency;
            res.local = true;
        } else {
            ++hot.remoteAccesses;
            bool hit = slices[home].access(localAddr(acc.addr),
                                           /*allocate=*/true);
            res.ready = now + cfg.wiLocalHitLatency + cfg.wiRemotePenalty
                        + (hit ? 0 : cfg.l2Latency);
            res.local = false;
            res.l1Hit = hit;
            abs[acc.cluster].access(acc.addr, /*allocate=*/true);
        }
    }
    if (acc.isLoad && load_out)
        back.read(acc.addr, load_out, acc.size);
    return res;
}

void
InterleavedMemSystem::syncStats() const
{
    statSet.setNonzero("ab_store_invalidations", hot.abStoreInvalidations);
    statSet.setNonzero("wi_local_stores", hot.localStores);
    statSet.setNonzero("wi_remote_stores", hot.remoteStores);
    statSet.setNonzero("wi_local_hits", hot.localHits);
    statSet.setNonzero("wi_local_misses", hot.localMisses);
    statSet.setNonzero("ab_hits", hot.abHits);
    statSet.setNonzero("wi_remote_accesses", hot.remoteAccesses);
}

} // namespace l0vliw::mem
