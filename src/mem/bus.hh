/**
 * @file
 * Occupancy model for the per-cluster bus to the L1 cache.
 *
 * Each cluster owns one bus to the (unified or sliced) L1; one new
 * transaction may start per cycle. The bus's transfer latency is folded
 * into the L1 access latency of Table 2 (2 request + 2 access +
 * 2 response); this model only accounts for *occupancy*, i.e. when the
 * next transaction may start. Demand traffic naturally precedes
 * prefetch traffic because the simulator issues demand requests first
 * within a cycle.
 */

#ifndef L0VLIW_MEM_BUS_HH
#define L0VLIW_MEM_BUS_HH

#include <algorithm>

#include "common/types.hh"

namespace l0vliw::mem
{

/** Single-transaction-per-cycle bus occupancy tracker. */
class Bus
{
  public:
    /**
     * Reserve the earliest slot at or after @p earliest.
     * @return the cycle the transaction actually starts.
     */
    Cycle
    reserve(Cycle earliest)
    {
        Cycle grant = std::max(earliest, nextFree);
        nextFree = grant + 1;
        return grant;
    }

    /** Next cycle at which the bus is free (for tests). */
    Cycle nextFreeCycle() const { return nextFree; }

    /** Reset occupancy (new simulation run). */
    void reset() { nextFree = 0; }

  private:
    Cycle nextFree = 0;
};

} // namespace l0vliw::mem

#endif // L0VLIW_MEM_BUS_HH
