/**
 * @file
 * The flexible compiler-managed L0 buffer (paper Section 3).
 *
 * Each cluster owns one L0 buffer: a small, fully associative,
 * LRU-replaced array of subblocks. A subblock is an L1 block divided by
 * the number of clusters (8 bytes for Table 2's 32-byte blocks and 4
 * clusters). Two entry flavours exist, matching the two mapping hints:
 *
 *  - linear: 8 consecutive bytes of an L1 block (one of its N
 *    "sub-slots"), filled into the accessing cluster only;
 *  - interleaved: the elements of an L1 block whose index is congruent
 *    to a residue modulo N, at a dynamic element granularity (the
 *    interleaving factor, taken from the access size). A single fill
 *    spreads all N residues across the N clusters.
 *
 * The buffer is write-through and non-write-allocate: stores update at
 * most one matching local entry and *invalidate* any other local
 * duplicates (the paper keeps a single write port), and invalidate-all
 * is a constant-latency operation because no dirty data can exist.
 *
 * Data bytes physically live in the entries: a load that hits a stale
 * entry returns stale bytes. The coherence oracle in src/sim depends on
 * this to prove the compiler's coherence management correct.
 */

#ifndef L0VLIW_MEM_L0_BUFFER_HH
#define L0VLIW_MEM_L0_BUFFER_HH

#include <cstdint>
#include <vector>

#include "common/stats.hh"
#include "common/types.hh"
#include "ir/hints.hh"

namespace l0vliw::mem
{

/** One L0 subblock entry. */
struct L0Entry
{
    bool valid = false;
    Addr blockAddr = 0;             ///< owning L1 block (aligned)
    ir::MapHint kind = ir::MapHint::LinearMap;
    /** Linear: sub-slot index (0..N-1). Interleaved: element residue. */
    int index = 0;
    /** Interleaved only: element granularity in bytes (1/2/4/8). */
    int factor = 0;
    std::uint64_t lastUse = 0;
    std::vector<std::uint8_t> data; ///< subblockBytes of payload
};

/** Result of an L0 lookup. */
struct L0Lookup
{
    bool hit = false;
    /** Hit touched the highest-addressed element of the subblock. */
    bool lastElement = false;
    /** Hit touched the lowest-addressed element of the subblock. */
    bool firstElement = false;
    /** Index of the hit entry (for tests). */
    int entry = -1;
};

/** A single cluster's flexible L0 buffer. */
class L0Buffer
{
  public:
    /**
     * @param num_entries entries in this buffer; < 0 means unbounded
     * @param subblock_bytes subblock size (L1 block / clusters)
     * @param num_clusters N, the interleaving modulus
     */
    L0Buffer(int num_entries, int subblock_bytes, int num_clusters);

    /**
     * Probe for [addr, addr+size). Reads the bytes into @p out when it
     * hits (out may be null for a pure probe). Updates LRU.
     */
    L0Lookup lookup(Addr addr, int size, std::uint8_t *out);

    /**
     * Fill one linear subblock. @p sub_data points at subblockBytes of
     * payload (the sub-slot's slice of the L1 block).
     */
    void fillLinear(Addr block_addr, int sub_index,
                    const std::uint8_t *sub_data);

    /**
     * Fill one interleaved subblock holding the elements of
     * @p block_addr whose element index is congruent to @p residue
     * (mod N) at granularity @p factor. @p block_data points at the
     * whole L1 block; the entry packs its residue's elements densely.
     */
    void fillInterleaved(Addr block_addr, int factor, int residue,
                         const std::uint8_t *block_data);

    /**
     * Write-through store update: update the most recently used
     * matching entry's bytes and invalidate every other matching entry
     * (single write port, Section 4.1). @return true if any entry
     * matched.
     */
    bool store(Addr addr, int size, const std::uint8_t *in);

    /** PSR non-primary replica: invalidate all matching entries. */
    void invalidateMatching(Addr addr, int size);

    /** invalidate_buffer instruction: drop everything, O(1) latency. */
    void invalidateAll();

    /** True when a subblock with these exact parameters is present. */
    bool hasLinear(Addr block_addr, int sub_index) const;
    bool hasInterleaved(Addr block_addr, int factor, int residue) const;

    /** Number of valid entries (for capacity tests). */
    int validEntries() const;

    int capacity() const { return numEntries; }
    bool unbounded() const { return numEntries < 0; }

    StatSet &stats() { syncStats(); return statSet; }
    const StatSet &stats() const { syncStats(); return statSet; }

  private:
    /** True when entry @p e contains all bytes of [addr, addr+size). */
    bool contains(const L0Entry &e, Addr addr, int size) const;

    /** Byte offset inside the entry payload for @p addr, or -1. */
    int payloadOffset(const L0Entry &e, Addr addr, int size) const;

    /** payloadOffset() for an entry already known to contain addr. */
    int payloadOffsetUnchecked(const L0Entry &e, Addr addr) const;

    /** Pick a slot for a new entry (invalid first, else LRU victim). */
    std::size_t victimIndex();

    /** Pack residue's elements of an L1 block densely into @p dst. */
    void gatherResidue(std::uint8_t *dst, const std::uint8_t *block_data,
                       int factor, int residue) const;

    /** Publish the hot counters into statSet (on stats() reads). */
    void syncStats() const;

    /**
     * Per-access counters as plain integers: lookup/fill/store run
     * once per simulated memory access, where a string-keyed map
     * update is measurably the dominant cost.
     */
    struct HotCounters
    {
        std::uint64_t hits = 0;
        std::uint64_t misses = 0;
        std::uint64_t evictions = 0;
        std::uint64_t fillsLinear = 0;
        std::uint64_t fillsInterleaved = 0;
        std::uint64_t storeUpdates = 0;
        std::uint64_t storeDupInvalidations = 0;
        std::uint64_t psrInvalidations = 0;
        std::uint64_t flushes = 0;
    };

    /** quick[] value of an invalid entry; rejects any realistic addr. */
    static constexpr Addr kNoBlock = 1ULL << 63;

    /** Keep quick[idx] in sync after a validity/blockAddr change. */
    void
    syncQuick(std::size_t idx)
    {
        quick[idx] =
            entries[idx].valid ? entries[idx].blockAddr : kNoBlock;
    }

    int numEntries;
    int subblockBytes;
    int numClusters;
    Addr blockBytes; ///< subblockBytes * numClusters, hoisted
    std::uint64_t useClock = 0;
    std::vector<L0Entry> entries;
    /**
     * Dense copy of each entry's block address (kNoBlock when
     * invalid). lookup()/store() run once per simulated access and
     * scan every entry; one unsigned compare against this array
     * rejects an entry without touching its cache line.
     */
    std::vector<Addr> quick;
    HotCounters hot;
    mutable StatSet statSet;
};

} // namespace l0vliw::mem

#endif // L0VLIW_MEM_L0_BUFFER_HH
