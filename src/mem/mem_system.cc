#include "mem/mem_system.hh"

#include "common/logging.hh"
#include "mem/interleaved.hh"
#include "mem/l0_system.hh"
#include "mem/multivliw.hh"
#include "mem/unified.hh"

namespace l0vliw::mem
{

std::unique_ptr<MemSystem>
MemSystem::create(const machine::MachineConfig &config)
{
    config.validate();
    switch (config.memArch) {
      case machine::MemArch::UnifiedL1:
        return std::make_unique<UnifiedMemSystem>(config);
      case machine::MemArch::L0Buffers:
        return std::make_unique<L0MemSystem>(config);
      case machine::MemArch::MultiVliw:
        return std::make_unique<MultiVliwMemSystem>(config);
      case machine::MemArch::WordInterleaved:
        return std::make_unique<InterleavedMemSystem>(config);
    }
    panic("unknown memory architecture");
}

} // namespace l0vliw::mem
