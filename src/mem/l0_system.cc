#include "mem/l0_system.hh"

#include <algorithm>

#include "common/intmath.hh"
#include "common/logging.hh"

namespace l0vliw::mem
{

L0MemSystem::L0MemSystem(const machine::MachineConfig &config)
    : MemSystem(config),
      l1(config.l1SizeBytes, config.l1Assoc, config.l1BlockBytes),
      buses(config.numClusters)
{
    for (int c = 0; c < config.numClusters; ++c)
        l0s.emplace_back(config.l0Entries, config.l0SubblockBytes,
                         config.numClusters);
}

void
L0MemSystem::commitFillsSlow(Cycle now, AccessScratch &scratch)
{
    auto it = pending.begin();
    while (it != pending.end()) {
        if (it->ready > now) {
            ++it;
            continue;
        }
        const int block_bytes = cfg.l1BlockBytes;
        std::vector<std::uint8_t> &block = scratch.blockBuf;
        block.resize(block_bytes);
        back.read(it->blockAddr, block.data(), block_bytes);
        if (it->interleaved) {
            // Scatter residues r0, r0+1, ... to consecutive clusters
            // starting at the accessing cluster (Section 3.1).
            for (int k = 0; k < cfg.numClusters; ++k) {
                int residue = (it->firstResidue + k) % cfg.numClusters;
                ClusterId c = (it->firstCluster + k) % cfg.numClusters;
                l0s[c].fillInterleaved(it->blockAddr, it->factor, residue,
                                       block.data());
            }
        } else {
            l0s[it->firstCluster].fillLinear(
                it->blockAddr, it->subIndex,
                block.data() + it->subIndex * cfg.l0SubblockBytes);
        }
        it = pending.erase(it);
    }
}

const L0MemSystem::PendingFill *
L0MemSystem::coveringFill(const MemAccess &acc) const
{
    Addr block = acc.addr & ~static_cast<Addr>(cfg.l1BlockBytes - 1);
    for (const auto &f : pending) {
        if (f.blockAddr != block)
            continue;
        if (f.interleaved) {
            if (acc.size > f.factor)
                continue;
            Addr off = acc.addr - f.blockAddr;
            Addr first_elem = fastDiv(off, f.factor);
            Addr last_elem = fastDiv(off + acc.size - 1, f.factor);
            if (first_elem != last_elem)
                continue;
            // Which cluster will receive this element's residue?
            int residue =
                static_cast<int>(fastMod(first_elem, cfg.numClusters));
            int k = (residue - f.firstResidue + cfg.numClusters)
                    % cfg.numClusters;
            ClusterId c = (f.firstCluster + k) % cfg.numClusters;
            if (c == acc.cluster)
                return &f;
        } else {
            Addr base = f.blockAddr
                        + static_cast<Addr>(f.subIndex) * cfg.l0SubblockBytes;
            if (acc.addr >= base
                    && acc.addr + acc.size <= base + cfg.l0SubblockBytes
                    && f.firstCluster == acc.cluster)
                return &f;
        }
    }
    return nullptr;
}

Cycle
L0MemSystem::l1AccessLatency(Addr addr, bool allocate)
{
    bool hit = l1.access(addr, allocate);
    ++(hit ? hot.l1Hits : hot.l1Misses);
    return cfg.l1Latency + (hit ? 0 : cfg.l2Latency);
}

Cycle
L0MemSystem::startFill(const MemAccess &acc, Cycle grant)
{
    Cycle lat = l1AccessLatency(acc.addr, /*allocate=*/true);
    Addr block = acc.addr & ~static_cast<Addr>(cfg.l1BlockBytes - 1);

    PendingFill f;
    f.blockAddr = block;
    f.firstCluster = acc.cluster;
    if (acc.map == ir::MapHint::InterleavedMap) {
        lat += cfg.interleavePenalty;
        f.interleaved = true;
        f.factor = acc.size;
        f.firstResidue = static_cast<int>(fastMod(
            fastDiv(acc.addr - block, acc.size), cfg.numClusters));
    } else {
        f.interleaved = false;
        f.subIndex = static_cast<int>(
            fastDiv(acc.addr - block, cfg.l0SubblockBytes));
    }
    f.ready = grant + lat;
    pending.push_back(f);
    return f.ready;
}

void
L0MemSystem::prefetchLinear(Addr block_addr, int sub_index,
                            ClusterId cluster, Cycle now)
{
    if (l0s[cluster].hasLinear(block_addr, sub_index))
        return;
    for (const auto &f : pending)
        if (!f.interleaved && f.blockAddr == block_addr
                && f.subIndex == sub_index && f.firstCluster == cluster)
            return;
    Cycle grant = buses[cluster].reserve(now);
    Cycle lat = l1AccessLatency(block_addr, /*allocate=*/true);
    PendingFill f;
    f.ready = grant + lat;
    f.interleaved = false;
    f.blockAddr = block_addr;
    f.subIndex = sub_index;
    f.firstCluster = cluster;
    pending.push_back(f);
    ++hot.prefetchFillsLinear;
}

void
L0MemSystem::prefetchInterleaved(Addr block_addr, int factor,
                                 int first_residue, ClusterId first_cluster,
                                 Cycle now)
{
    if (l0s[first_cluster].hasInterleaved(block_addr, factor, first_residue))
        return;
    for (const auto &f : pending)
        if (f.interleaved && f.blockAddr == block_addr
                && f.factor == factor)
            return;
    Cycle grant = buses[first_cluster].reserve(now);
    Cycle lat = l1AccessLatency(block_addr, /*allocate=*/true)
                + cfg.interleavePenalty;
    PendingFill f;
    f.ready = grant + lat;
    f.interleaved = true;
    f.blockAddr = block_addr;
    f.factor = factor;
    f.firstResidue = first_residue;
    f.firstCluster = first_cluster;
    pending.push_back(f);
    ++hot.prefetchFillsInterleaved;
}

void
L0MemSystem::hintPrefetchSlow(const MemAccess &acc, bool positive,
                              Cycle now)
{
    const Addr block_bytes = cfg.l1BlockBytes;
    Addr block = acc.addr & ~static_cast<Addr>(block_bytes - 1);

    const Addr dist = static_cast<Addr>(cfg.prefetchDistance);
    if (acc.map == ir::MapHint::InterleavedMap) {
        // "The block brought from L1 will be split into subblocks and
        // mapped in an interleaved manner among clusters" — one trigger
        // fetches the whole next/previous block for all clusters.
        Addr target = positive ? block + dist * block_bytes
                               : block - dist * block_bytes;
        if (!positive && block < dist * block_bytes)
            return;
        int residue = static_cast<int>(fastMod(
            fastDiv(acc.addr - block, acc.size), cfg.numClusters));
        prefetchInterleaved(target, acc.size, residue, acc.cluster,
                            now + 1);
        ++hot.hintPrefetches;
        return;
    }

    // Linear: the adjacent subblock, possibly in the adjacent block.
    Addr base = fastDiv(acc.addr, cfg.l0SubblockBytes)
                * cfg.l0SubblockBytes;
    Addr span = dist * cfg.l0SubblockBytes;
    Addr target = positive ? base + span : base - span;
    if (!positive && base < span)
        return;
    Addr tblock = target & ~static_cast<Addr>(block_bytes - 1);
    int sub =
        static_cast<int>(fastDiv(target - tblock, cfg.l0SubblockBytes));
    prefetchLinear(tblock, sub, acc.cluster, now + 1);
    ++hot.hintPrefetches;
}

MemAccessResult
L0MemSystem::access(const MemAccess &acc, Cycle now,
                    const std::uint8_t *store_data, std::uint8_t *load_out,
                    AccessScratch &scratch)
{
    MemAccessResult res;
    commitFills(now, scratch);

    if (acc.isPrefetch) {
        // Explicit software prefetch: linear mapping only (step 5 —
        // there is no benefit from interleaving a prefetch).
        Addr block = acc.addr & ~static_cast<Addr>(cfg.l1BlockBytes - 1);
        int sub = static_cast<int>(
            fastDiv(acc.addr - block, cfg.l0SubblockBytes));
        prefetchLinear(block, sub, acc.cluster, now);
        ++hot.explicitPrefetches;
        res.ready = now + 1;
        return res;
    }

    if (!acc.isLoad) {
        L0_ASSERT(store_data != nullptr, "store without data");
        if (!acc.primaryStore) {
            // PSR replica: invalidate matching local entries, and also
            // cancel in-flight fills that would deliver a pre-store
            // copy of the data into this cluster after the replica has
            // already passed.
            l0s[acc.cluster].invalidateMatching(acc.addr, acc.size);
            Addr block = acc.addr & ~static_cast<Addr>(cfg.l1BlockBytes - 1);
            auto it = pending.begin();
            while (it != pending.end()) {
                if (it->blockAddr == block
                        && (it->interleaved
                            || it->firstCluster == acc.cluster)) {
                    it = pending.erase(it);
                    ++hot.psrFillCancels;
                } else {
                    ++it;
                }
            }
            ++hot.psrReplicaStores;
            res.ready = now + 1;
            return res;
        }
        Cycle grant = buses[acc.cluster].reserve(now);
        bool l1hit = l1.access(acc.addr, /*allocate=*/false);
        ++(l1hit ? hot.l1StoreHits : hot.l1StoreMisses);
        back.write(acc.addr, store_data, acc.size);
        if (acc.access == ir::AccessHint::ParAccess)
            l0s[acc.cluster].store(acc.addr, acc.size, store_data);
        if (acc.psrReplicated) {
            // Together with the replica-side cancellation this closes
            // the fill-vs-replication race: a fill issued after the
            // replicas but completing before this write is dropped and
            // refetched with current data.
            Addr block = acc.addr & ~static_cast<Addr>(cfg.l1BlockBytes - 1);
            auto it = pending.begin();
            while (it != pending.end()) {
                if (it->blockAddr == block) {
                    it = pending.erase(it);
                    ++hot.psrFillCancels;
                } else {
                    ++it;
                }
            }
        }
        res.ready = grant + 1;
        res.l1Hit = l1hit;
        return res;
    }

    // ---- loads ----
    if (acc.access == ir::AccessHint::NoAccess) {
        Cycle grant = buses[acc.cluster].reserve(now);
        Cycle lat = l1AccessLatency(acc.addr, /*allocate=*/true);
        res.ready = grant + lat;
        res.l1Hit = lat == static_cast<Cycle>(cfg.l1Latency);
        if (load_out)
            back.read(acc.addr, load_out, acc.size);
        return res;
    }

    // PAR_ACCESS launches the bus/L1 request unconditionally, in
    // parallel with the L0 probe; the L1 reply is discarded on a hit.
    // This is PAR's cost — it keeps the cluster bus busy, which is the
    // contention Section 5.2 reports for jpegdec's saturated loops.
    // SEQ_ACCESS only touches the bus after a miss.
    const bool seq = acc.access == ir::AccessHint::SeqAccess;
    Cycle par_grant = 0;
    if (!seq)
        par_grant = buses[acc.cluster].reserve(now);

    L0Lookup probe = l0s[acc.cluster].lookup(acc.addr, acc.size, load_out);
    if (probe.hit) {
        res.ready = now + cfg.l0Latency;
        res.l0Hit = true;
        triggerHintPrefetch(acc, probe, now);
        return res;
    }

    // Covered by an in-flight (possibly prefetched) fill: wait for it
    // rather than duplicating the L1 request. Counts as a miss — this
    // is the prefetched-too-late stall of Section 5.2.
    if (const PendingFill *f = coveringFill(acc)) {
        res.ready = std::max(f->ready, now + cfg.l0Latency);
        ++hot.pendingWaits;
        if (load_out)
            back.read(acc.addr, load_out, acc.size);
        return res;
    }

    // Genuine L0 miss: go to L1 and fill. SEQ forwards one cycle after
    // the probe; PAR already holds its bus grant.
    Cycle grant = seq ? buses[acc.cluster].reserve(now + cfg.l0Latency)
                      : par_grant;
    res.ready = startFill(acc, grant);
    if (load_out)
        back.read(acc.addr, load_out, acc.size);
    return res;
}

void
L0MemSystem::endLoop(Cycle now)
{
    (void)now;
    for (auto &b : l0s)
        b.invalidateAll();
    pending.clear();
}

void
L0MemSystem::syncStats() const
{
    statSet.setNonzero("l1_hits", hot.l1Hits);
    statSet.setNonzero("l1_misses", hot.l1Misses);
    statSet.setNonzero("l1_store_hits", hot.l1StoreHits);
    statSet.setNonzero("l1_store_misses", hot.l1StoreMisses);
    statSet.setNonzero("l0_pending_waits", hot.pendingWaits);
    statSet.setNonzero("psr_fill_cancels", hot.psrFillCancels);
    statSet.setNonzero("psr_replica_stores", hot.psrReplicaStores);
    statSet.setNonzero("explicit_prefetches", hot.explicitPrefetches);
    statSet.setNonzero("hint_prefetches", hot.hintPrefetches);
    statSet.setNonzero("prefetch_fills_linear", hot.prefetchFillsLinear);
    statSet.setNonzero("prefetch_fills_interleaved", hot.prefetchFillsInterleaved);
}

StatSet
L0MemSystem::l0Stats() const
{
    StatSet merged;
    for (const auto &b : l0s)
        merged.merge(b.stats());
    merged.merge(stats());
    return merged;
}

} // namespace l0vliw::mem
