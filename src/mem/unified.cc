#include "mem/unified.hh"

#include "common/logging.hh"

namespace l0vliw::mem
{

UnifiedMemSystem::UnifiedMemSystem(const machine::MachineConfig &config)
    : MemSystem(config),
      l1(config.l1SizeBytes, config.l1Assoc, config.l1BlockBytes),
      buses(config.numClusters)
{
}

MemAccessResult
UnifiedMemSystem::access(const MemAccess &acc, Cycle now,
                         const std::uint8_t *store_data,
                         std::uint8_t *load_out, AccessScratch &scratch)
{
    (void)scratch; // no per-access staging on this architecture
    MemAccessResult res;
    Bus &bus = buses[acc.cluster];

    if (acc.isLoad || acc.isPrefetch) {
        Cycle grant = bus.reserve(now);
        bool hit = l1.access(acc.addr, /*allocate=*/true);
        ++(hit ? hot.l1Hits : hot.l1Misses);
        Cycle lat = cfg.l1Latency + (hit ? 0 : cfg.l2Latency);
        res.ready = grant + lat;
        res.l1Hit = hit;
        if (acc.isLoad && load_out)
            back.read(acc.addr, load_out, acc.size);
        return res;
    }

    // Store: write-through, non-allocating; completion does not gate
    // any consumer, so ready is just past issue.
    L0_ASSERT(store_data != nullptr, "store without data");
    Cycle grant = bus.reserve(now);
    bool hit = l1.access(acc.addr, /*allocate=*/false);
    ++(hit ? hot.l1StoreHits : hot.l1StoreMisses);
    back.write(acc.addr, store_data, acc.size);
    res.ready = grant + 1;
    res.l1Hit = hit;
    return res;
}

void
UnifiedMemSystem::syncStats() const
{
    statSet.setNonzero("l1_hits", hot.l1Hits);
    statSet.setNonzero("l1_misses", hot.l1Misses);
    statSet.setNonzero("l1_store_hits", hot.l1StoreHits);
    statSet.setNonzero("l1_store_misses", hot.l1StoreMisses);
}

} // namespace l0vliw::mem
