/**
 * @file
 * Generic set-associative tag store with LRU replacement.
 *
 * Used for the unified L1 (timing only — write-through keeps the
 * backing store current, so data never needs to live in L1), for the
 * MultiVLIW per-cluster slices, for the word-interleaved slices, and
 * (fully associative, word-grained) for the Attraction Buffers.
 */

#ifndef L0VLIW_MEM_TAG_CACHE_HH
#define L0VLIW_MEM_TAG_CACHE_HH

#include <cstdint>
#include <vector>

#include "common/types.hh"

namespace l0vliw::mem
{

/** Set-associative LRU tag store. */
class TagCache
{
  public:
    /**
     * @param size_bytes total capacity
     * @param assoc ways per set (pass sets*ways == entries for fully
     *        associative by using one set)
     * @param block_bytes block (line) granularity
     */
    TagCache(std::uint64_t size_bytes, int assoc, int block_bytes);

    /** Fully associative constructor: @p entries blocks of @p block_bytes. */
    static TagCache fullyAssociative(int entries, int block_bytes);

    /**
     * Look up the block containing @p addr.
     * @param allocate insert (with LRU eviction) on a miss
     * @return true on hit
     */
    bool access(Addr addr, bool allocate);

    /** Non-mutating probe. */
    bool present(Addr addr) const;

    /** Drop the block containing @p addr. @return true if it was there. */
    bool invalidate(Addr addr);

    /** Drop everything. */
    void clear();

    /** Block-aligned base of the block containing @p addr. */
    Addr blockAddr(Addr addr) const
    {
        return addr & ~static_cast<Addr>(blockBytes - 1);
    }

    int numSets() const { return sets; }
    int numWays() const { return ways; }

  private:
    struct Way
    {
        bool valid = false;
        Addr tag = 0;
        std::uint64_t lastUse = 0;
    };

    int setIndex(Addr addr) const;

    int sets;
    int ways;
    int blockBytes;
    std::uint64_t useClock = 0;
    std::vector<Way> store; // sets * ways, row-major by set
};

} // namespace l0vliw::mem

#endif // L0VLIW_MEM_TAG_CACHE_HH
