/**
 * @file
 * Architecture-independent memory-system interface.
 *
 * The kernel simulator drives one MemSystem per run. An access carries
 * the compiler's hints (which the hardware must honour for NO/SEQ/PAR
 * and may honour for mapping/prefetch), the issuing cluster, and the
 * stall-adjusted issue cycle; the system returns the cycle the data is
 * ready plus the bytes the load actually observed (possibly stale if
 * the compiler mismanaged coherence — the oracle checks).
 */

#ifndef L0VLIW_MEM_MEM_SYSTEM_HH
#define L0VLIW_MEM_MEM_SYSTEM_HH

#include <cstdint>
#include <memory>
#include <vector>

#include "common/stats.hh"
#include "common/types.hh"
#include "ir/hints.hh"
#include "machine/machine_config.hh"
#include "mem/backing.hh"

namespace l0vliw::mem
{

/** One dynamic memory access. */
struct MemAccess
{
    bool isLoad = true;
    bool isPrefetch = false;    ///< explicit software prefetch
    Addr addr = 0;
    int size = 4;
    ClusterId cluster = 0;
    ir::AccessHint access = ir::AccessHint::NoAccess;
    ir::MapHint map = ir::MapHint::LinearMap;
    ir::PrefetchHint prefetch = ir::PrefetchHint::NoPrefetch;
    bool primaryStore = true;   ///< false: PSR replica (invalidate only)
    bool psrReplicated = false; ///< primary of a PSR-replicated store
};

/** Timing and routing outcome of one access. */
struct MemAccessResult
{
    Cycle ready = 0;        ///< cycle the loaded data can be consumed
    bool l0Hit = false;     ///< L0-buffer hit (L0 architecture only)
    bool l1Hit = true;      ///< L1 (or slice) hit
    bool local = true;      ///< served without crossing clusters
};

/**
 * Caller-provided reusable scratch for the access path. A hot caller
 * (the kernel-plan executor) owns one per plan so per-access temporary
 * buffers — block staging for L0 fills today — are allocated once and
 * reused across every invocation instead of per access. Callers that
 * do not care use the system's own fallback scratch.
 */
struct AccessScratch
{
    std::vector<std::uint8_t> blockBuf; ///< one L1 block of staging
};

/** Abstract memory hierarchy under the clustered VLIW core. */
class MemSystem
{
  public:
    explicit MemSystem(const machine::MachineConfig &config)
        : cfg(config)
    {
    }

    virtual ~MemSystem() = default;

    /**
     * Perform one access.
     *
     * @param acc the access descriptor
     * @param now stall-adjusted issue cycle
     * @param store_data bytes to write (stores; size acc.size)
     * @param load_out buffer receiving observed bytes (loads; may be
     *        null when the caller only needs timing)
     * @param scratch reusable temporary storage owned by the caller
     */
    virtual MemAccessResult access(const MemAccess &acc, Cycle now,
                                   const std::uint8_t *store_data,
                                   std::uint8_t *load_out,
                                   AccessScratch &scratch) = 0;

    /** access() against the system's own fallback scratch. */
    MemAccessResult
    access(const MemAccess &acc, Cycle now, const std::uint8_t *store_data,
           std::uint8_t *load_out)
    {
        return access(acc, now, store_data, load_out, ownScratch);
    }

    /**
     * Loop boundary: the inter-loop coherence flush (invalidate_buffer
     * scheduled in every cluster). Architectures without L0 buffers
     * treat this as a no-op.
     */
    virtual void endLoop(Cycle now) { (void)now; }

    /** Backing store (for initialisation and the oracle). */
    Backing &backing() { return back; }

    StatSet &stats() { syncStats(); return statSet; }
    const StatSet &stats() const { syncStats(); return statSet; }

    const machine::MachineConfig &config() const { return cfg; }

    /** Build the memory system matching @p config.memArch. */
    static std::unique_ptr<MemSystem>
    create(const machine::MachineConfig &config);

  protected:
    /**
     * Publish any plain-integer hot-path counters into statSet. Called
     * whenever stats() is read; systems with per-access counters
     * override it so the access path never touches the string-keyed
     * map. Counters absent until nonzero, exactly as with add().
     */
    virtual void syncStats() const {}

    machine::MachineConfig cfg;
    Backing back;
    mutable StatSet statSet;
    AccessScratch ownScratch;
};

} // namespace l0vliw::mem

#endif // L0VLIW_MEM_MEM_SYSTEM_HH
