#include "metrics/registry.hh"

#include <sstream>

#include "common/json.hh"
#include "common/logging.hh"

namespace l0vliw::metrics
{

namespace detail
{

unsigned
threadShard()
{
    static std::atomic<unsigned> nextSlot{0};
    static thread_local const unsigned slot =
        nextSlot.fetch_add(1, std::memory_order_relaxed);
    return slot;
}

} // namespace detail

std::uint64_t
Histogram::count() const noexcept
{
    std::uint64_t total = 0;
    for (const auto &b : buckets_)
        total += b.load(std::memory_order_relaxed);
    return total;
}

void
Histogram::reset() noexcept
{
    for (auto &b : buckets_)
        b.store(0, std::memory_order_relaxed);
    sum_.store(0, std::memory_order_relaxed);
}

Registry &
Registry::global()
{
    // Leaked on purpose: instrumentation handles are function-local
    // statics in every layer, and their destruction order against this
    // object is unknowable. A process-lifetime registry has no exit
    // teardown to get wrong.
    static Registry *instance = new Registry();
    return *instance;
}

Registry::Entry &
Registry::findOrCreate(const std::string &name, const std::string &help,
                       Type type)
{
    std::lock_guard<std::mutex> lock(mutex_);
    auto it = byName_.find(name);
    if (it != byName_.end()) {
        if (it->second->type != type)
            fatal("metric '%s' registered twice with different types",
                  name.c_str());
        return *it->second;
    }
    entries_.emplace_back();
    Entry &entry = entries_.back();
    entry.type = type;
    entry.name = name;
    entry.base = name.substr(0, name.find('{'));
    entry.help = help;
    byName_[name] = &entry;
    return entry;
}

Counter &
Registry::counter(const std::string &name, const std::string &help)
{
    return findOrCreate(name, help, Type::Counter).counter;
}

Gauge &
Registry::gauge(const std::string &name, const std::string &help)
{
    return findOrCreate(name, help, Type::Gauge).gauge;
}

Histogram &
Registry::histogram(const std::string &name, const std::string &help)
{
    return findOrCreate(name, help, Type::Histogram).histogram;
}

namespace
{

const char *
typeName(bool counter, bool histogram)
{
    return histogram ? "histogram" : counter ? "counter" : "gauge";
}

/** Splice extra labels into a series name that may already carry a
 *  label set: f(`a{x="y"}`, `le="4"`) -> `a{x="y",le="4"}`. */
std::string
withLabel(const std::string &name, const std::string &label)
{
    std::size_t brace = name.find('{');
    if (brace == std::string::npos)
        return name + "{" + label + "}";
    std::string out = name;
    out.insert(name.size() - 1, "," + label);
    return out;
}

} // namespace

std::string
Registry::renderProm() const
{
    std::lock_guard<std::mutex> lock(mutex_);
    std::ostringstream out;
    std::string lastBase;
    for (const Entry &entry : entries_) {
        // Series registered back to back share their base name's
        // HELP/TYPE header (the labeled-family case); a base that
        // reappears later simply re-emits it, which scrapers accept.
        if (entry.base != lastBase) {
            out << "# HELP " << entry.base << ' ' << entry.help << '\n';
            out << "# TYPE " << entry.base << ' '
                << typeName(entry.type == Type::Counter,
                            entry.type == Type::Histogram)
                << '\n';
            lastBase = entry.base;
        }
        switch (entry.type) {
        case Type::Counter:
            out << entry.name << ' ' << entry.counter.value() << '\n';
            break;
        case Type::Gauge:
            out << entry.name << ' ' << entry.gauge.value() << '\n';
            break;
        case Type::Histogram: {
            std::uint64_t cumulative = 0;
            for (int b = 0; b < Histogram::kBuckets - 1; ++b) {
                cumulative += entry.histogram.bucket(b);
                out << withLabel(entry.name + "_bucket",
                                 "le=\"" + std::to_string(1ULL << b)
                                     + "\"")
                    << ' ' << cumulative << '\n';
            }
            cumulative +=
                entry.histogram.bucket(Histogram::kBuckets - 1);
            out << withLabel(entry.name + "_bucket", "le=\"+Inf\"")
                << ' ' << cumulative << '\n';
            out << entry.name << "_sum " << entry.histogram.sum()
                << '\n';
            out << entry.name << "_count " << cumulative << '\n';
            break;
        }
        }
    }
    return out.str();
}

ResultTable
Registry::renderTable() const
{
    std::lock_guard<std::mutex> lock(mutex_);
    ResultTable t;
    t.title = "process metrics\n";
    t.header = {"metric", "type", "value"};
    for (const Entry &entry : entries_) {
        switch (entry.type) {
        case Type::Counter:
            t.rows.push_back({CellValue::text(entry.name),
                              CellValue::text("counter"),
                              CellValue::integer(entry.counter.value())});
            break;
        case Type::Gauge:
            t.rows.push_back(
                {CellValue::text(entry.name), CellValue::text("gauge"),
                 CellValue::fixed(
                     static_cast<double>(entry.gauge.value()), 0)});
            break;
        case Type::Histogram: {
            std::uint64_t count = entry.histogram.count();
            std::uint64_t sum = entry.histogram.sum();
            t.rows.push_back({CellValue::text(entry.name + "_count"),
                              CellValue::text("histogram"),
                              CellValue::integer(count)});
            t.rows.push_back({CellValue::text(entry.name + "_sum"),
                              CellValue::text("histogram"),
                              CellValue::integer(sum)});
            t.rows.push_back(
                {CellValue::text(entry.name + "_mean"),
                 CellValue::text("histogram"),
                 CellValue::fixed(count == 0 ? 0.0
                                             : static_cast<double>(sum)
                                                   / static_cast<double>(
                                                       count),
                                  1)});
            break;
        }
        }
    }
    return t;
}

void
Registry::resetAllForTest()
{
    std::lock_guard<std::mutex> lock(mutex_);
    for (Entry &entry : entries_) {
        entry.counter.reset();
        entry.gauge.reset();
        entry.histogram.reset();
    }
}

Counter &
counter(const char *name, const char *help)
{
    return Registry::global().counter(name, help);
}

Gauge &
gauge(const char *name, const char *help)
{
    return Registry::global().gauge(name, help);
}

Histogram &
histogram(const char *name, const char *help)
{
    return Registry::global().histogram(name, help);
}

std::string
metricsQueryReply(const std::vector<std::string> &words)
{
    auto err = [](const std::string &error) {
        return "{\"ok\":false,\"error\":" + json::quote(error) + "}";
    };
    if (words.empty() || words[0] != "metrics" || words.size() > 2)
        return err("usage: metrics [prom|table|csv|json]");
    std::string format = words.size() == 2 ? words[1] : "prom";
    std::string text;
    if (format == "prom")
        text = Registry::global().renderProm();
    else if (format == "table")
        text = renderText(Registry::global().renderTable());
    else if (format == "csv")
        text = renderCsv(Registry::global().renderTable());
    else if (format == "json")
        text = renderJson(Registry::global().renderTable());
    else
        return err("unknown metrics format '" + format
                   + "' (expected prom|table|csv|json)");
    return "{\"ok\":true,\"exit\":0,\"text\":" + json::quote(text) + "}";
}

} // namespace l0vliw::metrics
