/**
 * @file
 * Per-job tracing: each cell's lifecycle (enqueue -> dispatch -> wire
 * write -> daemon execute -> reply -> fold) recorded as spans keyed by
 * the wire job id, dumped as Chrome trace-event JSON that Perfetto and
 * chrome://tracing load directly (the drivers' --trace flag).
 *
 * A TraceRecorder is a per-run collector, not a hot-path instrument:
 * spans land once per cell (milliseconds apart), so a mutex-guarded
 * vector push is fine here — the per-frame/per-access invariant
 * (ARCHITECTURE.md invariant 10) binds the metrics registry, not this.
 *
 * Timestamps are microseconds on the recorder's own steady-clock
 * epoch (construction time). The daemon side of the wire has no shared
 * clock: executeCellJob measures its own execute/plan-build durations
 * and rides them back inside the CellOutcome frame (execUs/planUs,
 * decoded tolerantly), and the client anchors those spans to end at
 * the moment the reply landed — one trace covers both sides of the
 * wire without clock synchronization.
 *
 * In the rendered trace the Perfetto "tid" lane is the wire job id,
 * so every cell gets its own row with its chain of spans in order.
 */

#ifndef L0VLIW_METRICS_TRACE_HH
#define L0VLIW_METRICS_TRACE_HH

#include <chrono>
#include <cstdint>
#include <mutex>
#include <string>
#include <utility>
#include <vector>

namespace l0vliw::metrics
{

/** One complete span ("ph":"X" in the trace-event format). */
struct TraceSpan
{
    std::uint64_t job = 0; ///< wire job id — the Perfetto lane (tid)
    std::string name;      ///< enqueue|cell|wire-write|execute|...
    std::string cat;       ///< layer or backend ("driver", "tcp", ...)
    double tsUs = 0;       ///< start, us since the recorder's epoch
    double durUs = 0;
    /** String-valued args rendered into the event's "args" object
     *  (bench/arch identity, ok, attempts, FailReason tags). */
    std::vector<std::pair<std::string, std::string>> args;
};

/** Thread-safe span collector for one driver run. */
class TraceRecorder
{
  public:
    TraceRecorder() : epoch_(std::chrono::steady_clock::now()) {}

    /** Microseconds elapsed since construction. */
    double
    nowUs() const
    {
        return sinceUs(std::chrono::steady_clock::now());
    }

    /** A steady-clock stamp on the recorder's timeline. */
    double
    sinceUs(std::chrono::steady_clock::time_point t) const
    {
        return std::chrono::duration<double, std::micro>(t - epoch_)
            .count();
    }

    void
    record(TraceSpan span)
    {
        std::lock_guard<std::mutex> lock(mutex_);
        spans_.push_back(std::move(span));
    }

    /** Snapshot (copies — recording may continue concurrently). */
    std::vector<TraceSpan> spans() const;

    /** The whole trace as one Chrome trace-event JSON document. */
    std::string toChromeJson() const;

    /** Write toChromeJson() to @p path; false sets @p error. */
    bool writeFile(const std::string &path, std::string &error) const;

  private:
    const std::chrono::steady_clock::time_point epoch_;
    mutable std::mutex mutex_;
    std::vector<TraceSpan> spans_;
};

} // namespace l0vliw::metrics

#endif // L0VLIW_METRICS_TRACE_HH
