/**
 * @file
 * The process-wide metrics registry: counters, gauges, and fixed-
 * bucket log2 latency histograms for every layer of the stack.
 *
 * The design extends the simulator's "stats are sync-on-read" hot-path
 * invariant to the whole system (ARCHITECTURE.md invariant 10): the
 * record path — Counter::inc, Gauge::set/add/max, Histogram::record —
 * never takes a lock and never allocates. Counters are sharded across
 * cache-line-padded relaxed atomics (one shard per worker thread,
 * round-robin), gauges and histogram buckets are single relaxed
 * atomics; the string-keyed view of the registry is materialized only
 * when someone reads it (renderProm / renderTable), so reads are
 * eventually consistent with respect to in-flight increments — exactly
 * the StatSet contract, process-wide.
 *
 * Registration is the one cold path that locks: counter()/gauge()/
 * histogram() look the name up (or create it) under the registry
 * mutex and hand back a reference that is stable for the life of the
 * process. Instrumentation sites therefore resolve their handle once
 * (a function-local static) and record through plain pointer access
 * ever after.
 *
 * Naming follows Prometheus conventions: lowercase, `_total` suffix
 * on counters, an optional fixed label set baked into the registered
 * name — `l0vliw_net_frames_total{dir="in"}` registers one series
 * whose base name (`l0vliw_net_frames_total`) groups the HELP/TYPE
 * exposition lines with its siblings. Two series sharing a base name
 * must share a type and help string.
 *
 * Exposure: renderProm() is the Prometheus text exposition format;
 * renderTable() is a ResultTable for the shared table/csv/json sinks;
 * metricsQueryReply() is the `metrics [prom|table|csv|json]` query
 * verb both daemons (`--serve` cell daemons and `l0store`) serve over
 * the NDJSON protocol (src/net/PROTOCOL.md).
 */

#ifndef L0VLIW_METRICS_REGISTRY_HH
#define L0VLIW_METRICS_REGISTRY_HH

#include <atomic>
#include <cstdint>
#include <deque>
#include <map>
#include <mutex>
#include <string>
#include <vector>

#include "common/result_sink.hh"

namespace l0vliw::metrics
{

namespace detail
{
/** Round-robin shard slot of the calling thread (stable per thread). */
unsigned threadShard();
} // namespace detail

/** A monotone counter, sharded so concurrent workers do not bounce one
 *  cache line. inc() is wait-free: one relaxed fetch_add. */
class Counter
{
  public:
    static constexpr unsigned kShards = 8;

    void
    inc(std::uint64_t n = 1) noexcept
    {
        shards_[detail::threadShard() & (kShards - 1)].v.fetch_add(
            n, std::memory_order_relaxed);
    }

    /** Sum of all shards — the publish-on-read half of the contract. */
    std::uint64_t
    value() const noexcept
    {
        std::uint64_t sum = 0;
        for (const Shard &s : shards_)
            sum += s.v.load(std::memory_order_relaxed);
        return sum;
    }

    void
    reset() noexcept
    {
        for (Shard &s : shards_)
            s.v.store(0, std::memory_order_relaxed);
    }

  private:
    struct alignas(64) Shard
    {
        std::atomic<std::uint64_t> v{0};
    };
    Shard shards_[kShards];
};

/** A point-in-time signed value (depths, live splits). */
class Gauge
{
  public:
    void
    set(std::int64_t v) noexcept
    {
        v_.store(v, std::memory_order_relaxed);
    }

    void
    add(std::int64_t n) noexcept
    {
        v_.fetch_add(n, std::memory_order_relaxed);
    }

    /** Raise to @p v when larger (peak tracking, e.g. maxInFlight). */
    void
    max(std::int64_t v) noexcept
    {
        std::int64_t seen = v_.load(std::memory_order_relaxed);
        while (v > seen
               && !v_.compare_exchange_weak(seen, v,
                                            std::memory_order_relaxed))
            ;
    }

    std::int64_t
    value() const noexcept
    {
        return v_.load(std::memory_order_relaxed);
    }

    void
    reset() noexcept
    {
        v_.store(0, std::memory_order_relaxed);
    }

  private:
    std::atomic<std::int64_t> v_{0};
};

/**
 * A fixed-bucket log2 histogram: bucket b counts values in
 * [2^(b-1), 2^b) (bucket 0 is exactly 0), so one record() is two
 * relaxed adds — no per-value allocation, no configuration. Sized for
 * microsecond latencies: the top bucket absorbs everything past
 * ~2^28us (about four and a half minutes).
 */
class Histogram
{
  public:
    static constexpr int kBuckets = 30;

    void
    record(std::uint64_t v) noexcept
    {
        int b = v == 0 ? 0 : 64 - __builtin_clzll(v);
        if (b > kBuckets - 1)
            b = kBuckets - 1;
        buckets_[b].fetch_add(1, std::memory_order_relaxed);
        sum_.fetch_add(v, std::memory_order_relaxed);
    }

    std::uint64_t
    bucket(int b) const noexcept
    {
        return buckets_[b].load(std::memory_order_relaxed);
    }

    /** Total records — derived from the buckets on read. */
    std::uint64_t count() const noexcept;

    std::uint64_t
    sum() const noexcept
    {
        return sum_.load(std::memory_order_relaxed);
    }

    void reset() noexcept;

  private:
    std::atomic<std::uint64_t> buckets_[kBuckets] = {};
    std::atomic<std::uint64_t> sum_{0};
};

/** The process-wide name -> instrument table. */
class Registry
{
  public:
    /** The one process-wide instance every layer records into. */
    static Registry &global();

    /**
     * Find or create the named series. The full @p name may carry a
     * baked-in label set (`...{dir="in"}`); its base name groups the
     * exposition. @p help is kept from the first registration of a
     * base name. Re-registering an existing name returns the same
     * object; registering it as a different instrument type is fatal.
     */
    Counter &counter(const std::string &name, const std::string &help);
    Gauge &gauge(const std::string &name, const std::string &help);
    Histogram &histogram(const std::string &name,
                         const std::string &help);

    /** Prometheus text exposition (HELP/TYPE per base name, series in
     *  registration order, histograms with le/sum/count). */
    std::string renderProm() const;

    /** The same snapshot as a ResultTable for the shared sinks
     *  (histograms appear as their _count/_sum/_mean). */
    ResultTable renderTable() const;

    /** Zero every value, keep every registration — test isolation
     *  (handles stay valid; a process restart is the real reset). */
    void resetAllForTest();

  private:
    enum class Type
    {
        Counter,
        Gauge,
        Histogram
    };

    struct Entry
    {
        Type type = Type::Counter;
        std::string name; ///< full series name, labels included
        std::string base; ///< name up to any '{'
        std::string help;
        // Exactly one is live, matching `type`. Deque storage keeps
        // the address stable across later registrations.
        Counter counter;
        Gauge gauge;
        Histogram histogram;
    };

    Entry &findOrCreate(const std::string &name,
                        const std::string &help, Type type);

    mutable std::mutex mutex_;
    std::deque<Entry> entries_; ///< registration order
    std::map<std::string, Entry *> byName_;
};

/** Convenience: Registry::global() lookups for instrumentation sites
 *  (resolve once into a function-local static, record ever after). */
Counter &counter(const char *name, const char *help);
Gauge &gauge(const char *name, const char *help);
Histogram &histogram(const char *name, const char *help);

/**
 * The `metrics [prom|table|csv|json]` query verb, shared by every
 * daemon: @p words is the whitespace-split query line (words[0] ==
 * "metrics"). Returns the one-line JSON reply of the store query
 * protocol — {"ok":true,"exit":0,"text":...} with the rendered
 * snapshot, or {"ok":false,"error":...} on a malformed verb. The
 * default format is prom.
 */
std::string metricsQueryReply(const std::vector<std::string> &words);

} // namespace l0vliw::metrics

#endif // L0VLIW_METRICS_REGISTRY_HH
