#include "metrics/trace.hh"

#include <cerrno>
#include <cstdio>
#include <cstring>

#include "common/json.hh"

namespace l0vliw::metrics
{

std::vector<TraceSpan>
TraceRecorder::spans() const
{
    std::lock_guard<std::mutex> lock(mutex_);
    return spans_;
}

std::string
TraceRecorder::toChromeJson() const
{
    std::lock_guard<std::mutex> lock(mutex_);
    std::string out = "{\"traceEvents\":[";
    bool first = true;
    for (const TraceSpan &span : spans_) {
        if (!first)
            out += ',';
        first = false;
        out += "{\"name\":" + json::quote(span.name);
        out += ",\"cat\":" + json::quote(span.cat);
        out += ",\"ph\":\"X\"";
        out += ",\"ts\":" + json::fromDouble(span.tsUs);
        out += ",\"dur\":" + json::fromDouble(span.durUs);
        out += ",\"pid\":1,\"tid\":" + std::to_string(span.job);
        out += ",\"args\":{";
        bool firstArg = true;
        for (const auto &kv : span.args) {
            if (!firstArg)
                out += ',';
            firstArg = false;
            out += json::quote(kv.first) + ":" + json::quote(kv.second);
        }
        out += "}}";
    }
    out += "],\"displayTimeUnit\":\"ms\"}";
    return out;
}

bool
TraceRecorder::writeFile(const std::string &path,
                         std::string &error) const
{
    std::FILE *out = std::fopen(path.c_str(), "w");
    if (out == nullptr) {
        error = path + ": " + std::strerror(errno);
        return false;
    }
    std::string text = toChromeJson();
    bool ok = std::fwrite(text.data(), 1, text.size(), out)
                  == text.size()
              && std::fputc('\n', out) != EOF;
    ok = std::fclose(out) == 0 && ok;
    if (!ok)
        error = path + ": short write";
    return ok;
}

} // namespace l0vliw::metrics
