#include "workloads/kernels.hh"

#include <vector>

#include "common/logging.hh"

namespace l0vliw::workloads
{

OpId
chainAlu(ir::Loop &loop, OpId input, int int_ops, int fp_ops)
{
    OpId prev = input;
    for (int k = 0; k < int_ops; ++k) {
        ir::Operation alu;
        alu.kind = ir::OpKind::IntAlu;
        alu.tag = "alu" + std::to_string(k);
        OpId id = loop.addOp(alu);
        loop.addRegEdge(prev, id);
        prev = id;
    }
    for (int k = 0; k < fp_ops; ++k) {
        ir::Operation alu;
        alu.kind = ir::OpKind::FpAlu;
        alu.tag = "fpu" + std::to_string(k);
        OpId id = loop.addOp(alu);
        loop.addRegEdge(prev, id);
        prev = id;
    }
    return prev;
}

ir::Operation
makeLoad(int array, int elem_size, long stride, long offset,
         const std::string &tag, bool strided)
{
    ir::Operation op;
    op.kind = ir::OpKind::Load;
    op.tag = tag;
    op.mem.array = array;
    op.mem.elemSize = elem_size;
    op.mem.strideElems = stride;
    op.mem.offsetElems = offset;
    op.mem.strided = strided;
    return op;
}

ir::Operation
makeStore(int array, int elem_size, long stride, long offset,
          const std::string &tag)
{
    ir::Operation op;
    op.kind = ir::OpKind::Store;
    op.tag = tag;
    op.mem.array = array;
    op.mem.elemSize = elem_size;
    op.mem.strideElems = stride;
    op.mem.offsetElems = offset;
    op.mem.strided = true;
    return op;
}

ir::Loop
streamMap(AddressSpace &as, const std::string &name, const StreamParams &p)
{
    ir::Loop loop(name);
    std::vector<OpId> loads;
    for (int s = 0; s < p.loadStreams; ++s) {
        int arr = loop.addArray(
            {name + "_in" + std::to_string(s), as.alloc(p.arrayBytes),
             p.arrayBytes});
        loads.push_back(loop.addOp(makeLoad(
            arr, p.elemSize, p.stride, 0, "ld" + std::to_string(s))));
    }
    // Combine tree, then the per-element chain.
    OpId acc = loads[0];
    for (std::size_t s = 1; s < loads.size(); ++s) {
        ir::Operation comb;
        comb.kind = ir::OpKind::IntAlu;
        comb.tag = "comb" + std::to_string(s);
        OpId id = loop.addOp(comb);
        loop.addRegEdge(acc, id);
        loop.addRegEdge(loads[s], id);
        acc = id;
    }
    OpId tail = chainAlu(loop, acc, p.intOps, p.fpOps);
    for (int s = 0; s < p.storeStreams; ++s) {
        int arr = loop.addArray(
            {name + "_out" + std::to_string(s), as.alloc(p.arrayBytes),
             p.arrayBytes});
        OpId st = loop.addOp(makeStore(arr, p.elemSize, p.stride, 0,
                                       "st" + std::to_string(s)));
        loop.addRegEdge(tail, st);
    }
    loop.validate();
    return loop;
}

ir::Loop
memRecurrence(AddressSpace &as, const std::string &name,
              const RecurrenceParams &p)
{
    ir::Loop loop(name);
    int y = loop.addArray({name + "_y", as.alloc(p.arrayBytes),
                           p.arrayBytes});
    OpId ld_prev = loop.addOp(makeLoad(y, p.elemSize, 1, -p.lookback,
                                       "ld_yprev"));
    std::vector<OpId> inputs{ld_prev};
    for (int s = 0; s < p.extraLoads; ++s) {
        int x = loop.addArray(
            {name + "_x" + std::to_string(s), as.alloc(p.arrayBytes),
             p.arrayBytes});
        inputs.push_back(loop.addOp(makeLoad(
            x, p.elemSize, 1, 0, "ld_x" + std::to_string(s))));
    }
    OpId acc = inputs[0];
    for (std::size_t s = 1; s < inputs.size(); ++s) {
        ir::Operation comb;
        comb.kind = ir::OpKind::IntAlu;
        comb.tag = "comb" + std::to_string(s);
        OpId id = loop.addOp(comb);
        loop.addRegEdge(acc, id);
        loop.addRegEdge(inputs[s], id);
        acc = id;
    }
    OpId tail = chainAlu(loop, acc, p.fpChain ? 0 : p.chainOps,
                         p.fpChain ? p.chainOps : 0);
    OpId st = loop.addOp(makeStore(y, p.elemSize, 1, 0, "st_y"));
    loop.addRegEdge(tail, st);
    // Genuine memory dependences of the recurrence: the store feeds the
    // lookback load `lookback` iterations later; the load must also
    // issue before the same-block store of its own iteration.
    loop.addMemEdge(st, ld_prev, p.lookback);
    loop.addMemEdge(ld_prev, st, 0);
    loop.validate();
    return loop;
}

ir::Loop
blockTransform(AddressSpace &as, const std::string &name, int block,
               int elem_size, std::uint64_t array_bytes)
{
    ir::Loop loop(name);
    int x = loop.addArray({name + "_x", as.alloc(array_bytes),
                           array_bytes});
    int y = loop.addArray({name + "_y", as.alloc(array_bytes),
                           array_bytes});
    // One iteration consumes `block` consecutive elements.
    std::vector<OpId> stage;
    for (int k = 0; k < block; ++k)
        stage.push_back(loop.addOp(makeLoad(
            x, elem_size, block, k, "ld" + std::to_string(k))));
    // Butterfly-ish log-depth combine.
    while (stage.size() > 1) {
        std::vector<OpId> next;
        for (std::size_t i = 0; i + 1 < stage.size(); i += 2) {
            ir::Operation comb;
            comb.kind = ir::OpKind::IntAlu;
            comb.tag = "bf";
            OpId id = loop.addOp(comb);
            loop.addRegEdge(stage[i], id);
            loop.addRegEdge(stage[i + 1], id);
            next.push_back(id);
        }
        if (stage.size() % 2)
            next.push_back(stage.back());
        stage = std::move(next);
    }
    for (int k = 0; k < block; ++k) {
        OpId st = loop.addOp(makeStore(y, elem_size, block, k,
                                       "st" + std::to_string(k)));
        loop.addRegEdge(stage[0], st);
    }
    loop.validate();
    return loop;
}

ir::Loop
columnWalk(AddressSpace &as, const std::string &name, const ColumnParams &p)
{
    ir::Loop loop(name);
    std::vector<OpId> loads;
    for (int s = 0; s < p.streams; ++s) {
        int arr = loop.addArray(
            {name + "_m" + std::to_string(s), as.alloc(p.arrayBytes),
             p.arrayBytes});
        loads.push_back(loop.addOp(makeLoad(
            arr, p.elemSize, p.strideElems, s, "col" + std::to_string(s))));
    }
    OpId acc = loads[0];
    for (std::size_t s = 1; s < loads.size(); ++s) {
        ir::Operation comb;
        comb.kind = ir::OpKind::IntAlu;
        comb.tag = "comb";
        OpId id = loop.addOp(comb);
        loop.addRegEdge(acc, id);
        loop.addRegEdge(loads[s], id);
        acc = id;
    }
    OpId tail = chainAlu(loop, acc, p.intOps, 0);
    int out = loop.addArray({name + "_out", as.alloc(p.arrayBytes),
                             p.arrayBytes});
    OpId st = loop.addOp(makeStore(out, p.elemSize, 1, 0, "st"));
    loop.addRegEdge(tail, st);
    loop.validate();
    return loop;
}

ir::Loop
tableLookup(AddressSpace &as, const std::string &name, int irregular_loads,
            int strided_loads, int int_ops, std::uint64_t table_bytes,
            int elem_size)
{
    ir::Loop loop(name);
    std::vector<OpId> inputs;
    for (int s = 0; s < strided_loads; ++s) {
        int arr = loop.addArray(
            {name + "_in" + std::to_string(s), as.alloc(table_bytes),
             table_bytes});
        inputs.push_back(loop.addOp(makeLoad(
            arr, elem_size, 1, 0, "ld" + std::to_string(s))));
    }
    for (int s = 0; s < irregular_loads; ++s) {
        int arr = loop.addArray(
            {name + "_tab" + std::to_string(s), as.alloc(table_bytes),
             table_bytes});
        OpId lk = loop.addOp(makeLoad(arr, elem_size, 0, 0,
                                      "lk" + std::to_string(s), false));
        // The lookup index comes from a strided input when present.
        if (!inputs.empty())
            loop.addRegEdge(inputs[0], lk);
        inputs.push_back(lk);
    }
    OpId acc = inputs[0];
    for (std::size_t s = 1; s < inputs.size(); ++s) {
        ir::Operation comb;
        comb.kind = ir::OpKind::IntAlu;
        comb.tag = "comb";
        OpId id = loop.addOp(comb);
        loop.addRegEdge(acc, id);
        loop.addRegEdge(inputs[s], id);
        acc = id;
    }
    OpId tail = chainAlu(loop, acc, int_ops, 0);
    int out = loop.addArray({name + "_out", as.alloc(table_bytes),
                             table_bytes});
    OpId st = loop.addOp(makeStore(out, elem_size, 1, 0, "st"));
    loop.addRegEdge(tail, st);
    loop.validate();
    return loop;
}

ir::Loop
conservativeUpdate(AddressSpace &as, const std::string &name,
                   int load_streams, int int_ops, int elem_size,
                   std::uint64_t array_bytes)
{
    ir::Loop loop(name);
    std::vector<OpId> loads;
    std::vector<int> arrays;
    for (int s = 0; s < load_streams; ++s) {
        int arr = loop.addArray(
            {name + "_a" + std::to_string(s), as.alloc(array_bytes),
             array_bytes});
        arrays.push_back(arr);
        loads.push_back(loop.addOp(makeLoad(
            arr, elem_size, 1, 0, "ld" + std::to_string(s))));
    }
    OpId acc = loads[0];
    for (std::size_t s = 1; s < loads.size(); ++s) {
        ir::Operation comb;
        comb.kind = ir::OpKind::IntAlu;
        comb.tag = "comb";
        OpId id = loop.addOp(comb);
        loop.addRegEdge(acc, id);
        loop.addRegEdge(loads[s], id);
        acc = id;
    }
    OpId tail = chainAlu(loop, acc, int_ops, 0);
    // In-place update of stream 0 a few elements behind the read.
    OpId st = loop.addOp(makeStore(arrays[0], elem_size, 1, -2, "st"));
    loop.addRegEdge(tail, st);
    // Genuine set: the store writes elements load0 already read (WAR)
    // and a reader two iterations later would see them (RAW is real
    // because offset -2 trails the load stream).
    loop.addMemEdge(st, loads[0], 2);
    loop.addMemEdge(loads[0], st, 0);
    // Conservative may-alias edges to every other stream: the
    // pessimistic disambiguation code specialization removes.
    for (std::size_t s = 1; s < loads.size(); ++s) {
        loop.addMemEdge(st, loads[s], 1, /*conservative=*/true);
        loop.addMemEdge(loads[s], st, 0, /*conservative=*/true);
    }
    loop.validate();
    return loop;
}

} // namespace l0vliw::workloads
