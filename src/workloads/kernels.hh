/**
 * @file
 * Parametrised loop-kernel patterns used to model the Mediabench
 * benchmarks (see workloads/mediabench.cc for the mapping).
 *
 * Each builder returns a validated ir::Loop whose arrays were
 * allocated from an AddressSpace with page-aligned bases and guard
 * gaps, so distinct arrays (and therefore distinct memory-dependent
 * sets) can never share an L1 block — the "padding and smart data
 * layout" assumption of Section 3.3.
 */

#ifndef L0VLIW_WORKLOADS_KERNELS_HH
#define L0VLIW_WORKLOADS_KERNELS_HH

#include <string>

#include "common/types.hh"
#include "ir/loop.hh"

namespace l0vliw::workloads
{

/** Bump allocator with guard gaps and cache-set staggering. */
class AddressSpace
{
  public:
    /**
     * Allocate @p bytes. The base is block (32 B) aligned and a 4 KiB
     * guard gap follows, so prefetches past an array end can never hit
     * another array. Consecutive allocations are staggered across L1
     * sets (17 sets apart) — real linkers/mallocs do not align every
     * object to the L1 way size, and page-aligning everything would
     * make all arrays conflict in the same sets of an 8 KiB 2-way L1.
     */
    Addr
    alloc(std::uint64_t bytes)
    {
        Addr base = cursor + skew;
        std::uint64_t rounded = (bytes + 4095) / 4096 * 4096;
        cursor += rounded + 8192;
        skew = (skew + 17 * 32) % 4096;
        return base;
    }

  private:
    Addr cursor = 0x100000;
    Addr skew = 0;
};

/** Chain @p intOps integer then @p fpOps floating-point ops after
 *  @p input; returns the chain tail. */
OpId chainAlu(ir::Loop &loop, OpId input, int intOps, int fpOps = 0);

/** A load of @p array with the given affine stream (strided = false
 *  makes it an irregular, never-L0-candidate access). */
ir::Operation makeLoad(int array, int elemSize, long strideElems,
                       long offsetElems, const std::string &tag,
                       bool strided = true);

/** A strided store of @p array. */
ir::Operation makeStore(int array, int elemSize, long strideElems,
                        long offsetElems, const std::string &tag);

/** Common knobs of the stream-shaped kernels. */
struct StreamParams
{
    int elemSize = 4;       ///< access granularity (1, 2, 4 bytes)
    int loadStreams = 2;    ///< distinct unit-stride input streams
    int storeStreams = 1;   ///< distinct unit-stride output streams
    int intOps = 3;         ///< integer ops chained per element
    int fpOps = 0;          ///< floating-point ops chained per element
    std::uint64_t arrayBytes = 4096; ///< size of each array
    int stride = 1;         ///< elements advanced per iteration
};

/**
 * Map/filter over parallel streams: y_j[i] = f(x_0[i..], ...).
 * Resource-bound (no loop-carried recurrence): profits from unrolling
 * whenever its op counts don't divide evenly by the cluster count.
 */
ir::Loop streamMap(AddressSpace &as, const std::string &name,
                   const StreamParams &p);

/** Parameters of the recurrence kernels. */
struct RecurrenceParams
{
    int elemSize = 4;
    int lookback = 1;       ///< y[i] depends on y[i - lookback]
    int chainOps = 2;       ///< ALU ops on the recurrence path
    bool fpChain = false;   ///< chain in FP (longer latency)
    int extraLoads = 1;     ///< additional streamed inputs
    std::uint64_t arrayBytes = 4096;
};

/**
 * Memory recurrence: y[i] = g(y[i - lookback], x[i], ...). The
 * load(y)->chain->store(y) cycle makes the loop RecMII-bound, so the
 * load's L0-vs-L1 latency directly scales the II — the paper's main
 * compute-time win. The load+store pair forms a genuine memory-
 * dependent set, exercising the 1C/NL0 coherence machinery (and the
 * oracle: the load re-reads bytes the store wrote).
 */
ir::Loop memRecurrence(AddressSpace &as, const std::string &name,
                       const RecurrenceParams &p);

/**
 * Short block transform (DCT-like): @p block loads, a log-depth
 * combine tree, @p block stores. Meant to run with a small trip count
 * and many invocations so prologue/epilogue (stage count) matters.
 */
ir::Loop blockTransform(AddressSpace &as, const std::string &name,
                        int block, int elemSize,
                        std::uint64_t arrayBytes);

/** Parameters of the column-walk kernel. */
struct ColumnParams
{
    int elemSize = 4;
    int strideElems = 16;   ///< row length: an "other" (SO) stride
    int streams = 1;
    int intOps = 2;
    std::uint64_t arrayBytes = 4096;
};

/**
 * Column-major walk over a row-major matrix: strided but with a stride
 * larger than an L0 subblock, so the prefetch hints do not help and
 * step 5 must insert explicit software prefetches.
 */
ir::Loop columnWalk(AddressSpace &as, const std::string &name,
                    const ColumnParams &p);

/**
 * Irregular table lookups mixed with a strided output: the lookups are
 * non-strided (never L0 candidates) and drag the benchmark's S column
 * down, as in jpegenc/pegwit*.
 */
ir::Loop tableLookup(AddressSpace &as, const std::string &name,
                     int irregularLoads, int stridedLoads, int intOps,
                     std::uint64_t tableBytes, int elemSize = 4);

/**
 * In-place update stream with conservative may-alias dependences
 * between all its loads and the store (the pessimistic disambiguation
 * the paper reports for epicdec/pgpdec/pgpenc/rasta). Code
 * specialization strips the conservative edges, leaving only each
 * stream's genuine set.
 */
ir::Loop conservativeUpdate(AddressSpace &as, const std::string &name,
                            int loadStreams, int intOps, int elemSize,
                            std::uint64_t arrayBytes);

} // namespace l0vliw::workloads

#endif // L0VLIW_WORKLOADS_KERNELS_HH
