#include "workloads/workload.hh"

#include "common/logging.hh"
#include "workloads/kernels.hh"

namespace l0vliw::workloads
{

namespace
{

/**
 * Each model is built from the kernel patterns; the parameters are
 * calibrated so the measured dynamic stride mix approximates Table 1,
 * the unroll decisions approximate Figure 6, and the per-benchmark
 * behaviours called out in Section 5.2 appear (see workload.hh).
 *
 * Calibration levers (what produces the paper's effects here):
 *  - memRecurrence loops are RecMII-bound: the L0-vs-L1 load latency
 *    scales the II directly (the main compute-time win). With trips
 *    >= 128 they unroll by 4 on the steady-state tie, matching the
 *    high unroll factors of Figure 6 without losing the gain.
 *  - streamMap loops whose op counts don't divide by 4 gain
 *    fractional-II from unrolling; their L0 benefit is the prologue
 *    (stage count) plus prefetch-hidden L1 misses on streaming data.
 *  - loops with trips < 128 stay at unroll 1 (prologue-dominated),
 *    setting the low averages of the pegwit and pgp pairs.
 *  - small-II loops (epicdec, rasta) trigger the hint prefetch one
 *    subblock ahead of a gap shorter than the L1 round trip: the fill
 *    is in flight when the next access arrives (stall).
 *  - arrays > 8 KiB defeat the L1 (pegwit's low L1 hit rate,
 *    jpegdec/mpeg2dec streaming misses); smaller arrays are
 *    L1-resident after the first invocation.
 */

Benchmark
makeEpicdec()
{
    // Image-pyramid decoder: small-II filter loops whose prefetches
    // arrive late (large stall share), plus column walks (SO = 33%).
    Benchmark b;
    b.name = "epicdec";
    b.paper = {0.99, 0.66, 0.33, 1.9};
    AddressSpace as;

    StreamParams fil;
    fil.elemSize = 2;
    fil.loadStreams = 2;
    fil.storeStreams = 1;
    fil.intOps = 2;
    fil.arrayBytes = 65536;
    b.loops.push_back({streamMap(as, "epic_filter", fil), 1024, 10});

    ColumnParams col;
    col.elemSize = 4;
    col.strideElems = 32;
    col.streams = 2;
    col.intOps = 4;
    col.arrayBytes = 16384;
    b.loops.push_back({columnWalk(as, "epic_cols", col), 512, 24});

    RecurrenceParams rec;
    rec.elemSize = 2;
    rec.lookback = 1;
    rec.chainOps = 2;
    rec.extraLoads = 1;
    b.loops.push_back({memRecurrence(as, "epic_expand", rec), 96, 30});

    StreamParams up;
    up.elemSize = 2;
    up.loadStreams = 3;
    up.storeStreams = 2;
    up.intOps = 5;
    b.loops.push_back({streamMap(as, "epic_upsample", up), 96, 40});
    return b;
}

Benchmark
makeG721(const std::string &name)
{
    // ADPCM: the adaptive predictor and quantizer feedback loops are
    // genuine memory recurrences, so the load latency scales the II;
    // every loop unrolls by 4 (Figure 6 reports exactly 4.0).
    Benchmark b;
    b.name = name;
    b.paper = {1.00, 1.00, 0.00, 4.0};
    AddressSpace as;

    RecurrenceParams pred;
    pred.elemSize = 2;
    pred.lookback = 1;
    pred.chainOps = 4;
    pred.extraLoads = 1;
    b.loops.push_back({memRecurrence(as, name + "_pred", pred), 384, 10});

    RecurrenceParams adap;
    adap.elemSize = 2;
    adap.lookback = 1;
    adap.chainOps = 5;
    adap.extraLoads = 2;
    b.loops.push_back({memRecurrence(as, name + "_adapt", adap), 320, 10});

    StreamParams quan;
    quan.elemSize = 2;
    quan.loadStreams = 1;
    quan.storeStreams = 1;
    quan.intOps = 7;
    b.loops.push_back({streamMap(as, name + "_quant", quan), 640, 12});

    StreamParams rec;
    rec.elemSize = 2;
    rec.loadStreams = 2;
    rec.storeStreams = 2;
    rec.intOps = 7;
    b.loops.push_back({streamMap(as, name + "_recon", rec), 512, 12});
    return b;
}

Benchmark
makeGsm(const std::string &name, bool encoder)
{
    // GSM 06.10: LPC/LTP short-term filters are memory recurrences on
    // small frames (unroll 1); windowing/scale loops unroll by 4.
    Benchmark b;
    b.name = name;
    b.paper = encoder ? PaperReference{0.99, 0.99, 0.00, 2.2}
                      : PaperReference{0.97, 0.97, 0.00, 2.3};
    AddressSpace as;

    StreamParams win;
    win.elemSize = 2;
    win.loadStreams = 1;
    win.storeStreams = 1;
    win.intOps = 5;
    b.loops.push_back({streamMap(as, name + "_window", win), 160, 50});

    RecurrenceParams lpc;
    lpc.elemSize = 2;
    lpc.lookback = 1;
    lpc.chainOps = encoder ? 5 : 4;
    lpc.extraLoads = 1;
    b.loops.push_back({memRecurrence(as, name + "_lpc", lpc), 120, 50});

    StreamParams add;
    add.elemSize = 2;
    add.loadStreams = 3;
    add.storeStreams = 1;
    add.intOps = 6;
    b.loops.push_back({streamMap(as, name + "_scale", add), 160, 40});

    RecurrenceParams ltp;
    ltp.elemSize = 2;
    ltp.lookback = 2;
    ltp.chainOps = 6;
    ltp.extraLoads = encoder ? 2 : 1;
    b.loops.push_back({memRecurrence(as, name + "_ltp", ltp), 96, 40});

    if (!encoder) {
        // A small irregular tail drags S to 97%.
        b.loops.push_back(
            {tableLookup(as, name + "_tab", 1, 3, 3, 4096, 2), 64, 20});
    }
    return b;
}

Benchmark
makeJpegdec()
{
    // The paper's problem child. The upsample loop holds four L0
    // streams per cluster: with 4-entry buffers the prefetched
    // subblocks evict still-live ones (LRU thrash); with 8 entries it
    // fits. The color loop saturates every memory slot, forcing
    // PAR_ACCESS everywhere and starving the prefetch traffic on the
    // buses — the loop where the conservative no-L0 schedule is ~30%
    // better. Huffman lookups and IDCT column walks set S/SG/SO to
    // ~60/39/21.
    Benchmark b;
    b.name = "jpegdec";
    b.paper = {0.60, 0.39, 0.21, 3.2};
    AddressSpace as;

    StreamParams upsample;
    upsample.elemSize = 1;
    upsample.loadStreams = 4;
    upsample.storeStreams = 1;
    upsample.intOps = 6;
    upsample.arrayBytes = 1024;
    b.loops.push_back({streamMap(as, "jpg_upsample", upsample), 512, 10});

    StreamParams color;
    color.elemSize = 2;
    color.loadStreams = 8;
    color.storeStreams = 2;
    color.intOps = 3;
    color.arrayBytes = 512;
    b.loops.push_back({streamMap(as, "jpg_color", color), 512, 8});

    b.loops.push_back(
        {tableLookup(as, "jpg_huff", 4, 1, 3, 1024, 2), 384, 60});

    ColumnParams idct;
    idct.elemSize = 2;
    idct.strideElems = 8;
    idct.streams = 2;
    idct.intOps = 3;
    idct.arrayBytes = 2048;
    b.loops.push_back({columnWalk(as, "jpg_idct_col", idct), 512, 24});
    return b;
}

Benchmark
makeJpegenc()
{
    Benchmark b;
    b.name = "jpegenc";
    b.paper = {0.49, 0.40, 0.09, 2.6};
    AddressSpace as;

    StreamParams color;
    color.elemSize = 1;
    color.loadStreams = 3;
    color.storeStreams = 1;
    color.intOps = 5;
    color.arrayBytes = 65536;
    b.loops.push_back({streamMap(as, "jpe_color", color), 512, 10});

    b.loops.push_back(
        {tableLookup(as, "jpe_quant", 4, 1, 4, 1024, 2), 120, 90});

    RecurrenceParams dc;
    dc.elemSize = 2;
    dc.lookback = 1;
    dc.chainOps = 4;
    dc.extraLoads = 1;
    b.loops.push_back({memRecurrence(as, "jpe_dcpred", dc), 256, 16});

    b.loops.push_back({blockTransform(as, "jpe_dct", 8, 2, 8192), 8, 100});

    b.loops.push_back(
        {tableLookup(as, "jpe_huff", 3, 1, 3, 4096, 2), 100, 80});
    return b;
}

Benchmark
makeMpeg2dec()
{
    // Motion compensation walks macroblock rows (stride > subblock:
    // SO = 54%) in loops of II ~5-6, so late prefetches hurt less than
    // in epicdec (Section 5.2).
    Benchmark b;
    b.name = "mpeg2dec";
    b.paper = {0.96, 0.42, 0.54, 2.2};
    AddressSpace as;

    ColumnParams mc;
    mc.elemSize = 1;
    mc.strideElems = 64;
    mc.streams = 3;
    mc.intOps = 8;
    mc.arrayBytes = 2048;
    b.loops.push_back({columnWalk(as, "mpg_mc", mc), 640, 16});

    ColumnParams mc2;
    mc2.elemSize = 2;
    mc2.strideElems = 16;
    mc2.streams = 2;
    mc2.intOps = 7;
    mc2.arrayBytes = 4096;
    b.loops.push_back({columnWalk(as, "mpg_idct", mc2), 384, 10});

    StreamParams add;
    add.elemSize = 1;
    add.loadStreams = 3;
    add.storeStreams = 1;
    add.intOps = 6;
    add.arrayBytes = 4096;
    b.loops.push_back({streamMap(as, "mpg_add", add), 384, 8});

    RecurrenceParams pred;
    pred.elemSize = 2;
    pred.lookback = 1;
    pred.chainOps = 2;
    b.loops.push_back({memRecurrence(as, "mpg_pred", pred), 96, 20});

    b.loops.push_back(
        {tableLookup(as, "mpg_vlc", 1, 2, 3, 4096, 2), 64, 20});
    return b;
}

Benchmark
makePegwit(const std::string &name)
{
    // Elliptic-curve crypto: large tables (32 KiB), so both L1 and L0
    // hit rates are low and stall remains even with unbounded buffers
    // (Section 5.2). Short block loops keep most of the benchmark at
    // unroll 1 (Figure 6 reports 1.5).
    Benchmark b;
    b.name = name;
    b.paper = name == "pegwitdec"
                  ? PaperReference{0.50, 0.48, 0.02, 1.5}
                  : PaperReference{0.56, 0.54, 0.02, 1.5};
    AddressSpace as;

    b.loops.push_back(
        {tableLookup(as, name + "_gf", 3, 2, 4, 32768, 4), 96, 110});

    RecurrenceParams hash;
    hash.elemSize = 4;
    hash.lookback = 1;
    hash.chainOps = 4;
    hash.fpChain = false;
    hash.extraLoads = 1;
    hash.arrayBytes = 32768;
    b.loops.push_back({memRecurrence(as, name + "_hash", hash), 100, 40});

    StreamParams xr;
    xr.elemSize = 4;
    xr.loadStreams = 2;
    xr.storeStreams = 1;
    xr.intOps = 5;
    xr.arrayBytes = 32768;
    b.loops.push_back({streamMap(as, name + "_xor", xr), 256, 8});

    if (name == "pegwitenc") {
        ColumnParams sq;
        sq.elemSize = 4;
        sq.strideElems = 8;
        sq.streams = 1;
        sq.intOps = 4;
        sq.arrayBytes = 16384;
        b.loops.push_back({columnWalk(as, name + "_sq", sq), 100, 8});
    }
    return b;
}

Benchmark
makePgp(const std::string &name)
{
    // Multiprecision arithmetic: in-place digit updates with
    // conservative may-alias dependences that code specialization
    // removes (Section 4.1); carry chains are genuine recurrences on
    // short digit vectors (unroll 1).
    Benchmark b;
    b.name = name;
    bool enc = name == "pgpenc";
    b.paper = enc ? PaperReference{0.86, 0.86, 0.00, 1.4}
                  : PaperReference{0.99, 0.98, 0.01, 1.5};
    AddressSpace as;

    LoopInstance mul;
    mul.loop = conservativeUpdate(as, name + "_mul", 3, 5, 4, 8192);
    mul.trips = 96;
    mul.invocations = 60;
    mul.specialize = true;
    b.loops.push_back(std::move(mul));

    RecurrenceParams carry;
    carry.elemSize = 4;
    carry.lookback = 1;
    carry.chainOps = 3;
    b.loops.push_back({memRecurrence(as, name + "_carry", carry), 100, 50});

    StreamParams cp;
    cp.elemSize = 4;
    cp.loadStreams = 2;
    cp.storeStreams = 1;
    cp.intOps = 5;
    cp.arrayBytes = 32768;
    b.loops.push_back({streamMap(as, name + "_copy", cp), 256, 14});

    if (enc) {
        b.loops.push_back(
            {tableLookup(as, name + "_sbox", 2, 1, 3, 8192, 1), 100, 40});
    }
    return b;
}

Benchmark
makeRasta()
{
    // Speech feature extraction: small-II filter loops (late
    // prefetches), an FP filterbank recurrence, and conservative sets
    // removed by specialization.
    Benchmark b;
    b.name = "rasta";
    b.paper = {0.95, 0.87, 0.08, 2.6};
    AddressSpace as;

    StreamParams fil;
    fil.elemSize = 4;
    fil.loadStreams = 2;
    fil.storeStreams = 1;
    fil.intOps = 2;
    fil.fpOps = 1;
    fil.arrayBytes = 65536;
    b.loops.push_back({streamMap(as, "rst_filter", fil), 768, 10});

    RecurrenceParams bank;
    bank.elemSize = 4;
    bank.lookback = 1;
    bank.chainOps = 2;
    bank.fpChain = true;
    b.loops.push_back({memRecurrence(as, "rst_bank", bank), 384, 10});

    LoopInstance spec;
    spec.loop = conservativeUpdate(as, "rst_spec", 2, 4, 4, 8192);
    spec.trips = 96;
    spec.invocations = 30;
    spec.specialize = true;
    b.loops.push_back(std::move(spec));

    ColumnParams col;
    col.elemSize = 4;
    col.strideElems = 16;
    col.streams = 1;
    col.intOps = 3;
    b.loops.push_back({columnWalk(as, "rst_bands", col), 120, 30});

    StreamParams win;
    win.elemSize = 4;
    win.loadStreams = 1;
    win.storeStreams = 1;
    win.intOps = 5;
    b.loops.push_back({streamMap(as, "rst_window", win), 160, 40});
    return b;
}

} // namespace

const std::vector<std::string> &
benchmarkNames()
{
    static const std::vector<std::string> names = {
        "epicdec", "g721dec", "g721enc", "gsmdec", "gsmenc",
        "jpegdec", "jpegenc", "mpeg2dec", "pegwitdec", "pegwitenc",
        "pgpdec", "pgpenc", "rasta",
    };
    return names;
}

Benchmark
makeBenchmark(const std::string &name)
{
    if (name == "epicdec")
        return makeEpicdec();
    if (name == "g721dec" || name == "g721enc")
        return makeG721(name);
    if (name == "gsmdec")
        return makeGsm(name, false);
    if (name == "gsmenc")
        return makeGsm(name, true);
    if (name == "jpegdec")
        return makeJpegdec();
    if (name == "jpegenc")
        return makeJpegenc();
    if (name == "mpeg2dec")
        return makeMpeg2dec();
    if (name == "pegwitdec" || name == "pegwitenc")
        return makePegwit(name);
    if (name == "pgpdec" || name == "pgpenc")
        return makePgp(name);
    if (name == "rasta")
        return makeRasta();
    fatal("unknown benchmark '%s'", name.c_str());
}

std::vector<Benchmark>
mediabenchSuite()
{
    std::vector<Benchmark> suite;
    for (const auto &n : benchmarkNames())
        suite.push_back(makeBenchmark(n));
    return suite;
}

} // namespace l0vliw::workloads
