#include "workloads/stride_mix.hh"

#include <cstdlib>

namespace l0vliw::workloads
{

StrideMix
measureStrideMix(const Benchmark &bench)
{
    std::uint64_t total = 0, strided = 0, good = 0, other = 0;
    for (const auto &li : bench.loops) {
        std::uint64_t weight = li.trips * li.invocations;
        for (const auto &op : li.loop.ops()) {
            if (!ir::isMemKind(op.kind))
                continue;
            total += weight;
            if (!op.mem.strided)
                continue;
            strided += weight;
            if (std::abs(op.mem.strideElems) <= 1)
                good += weight;
            else
                other += weight;
        }
    }
    StrideMix mix;
    if (total == 0)
        return mix;
    mix.s = static_cast<double>(strided) / total;
    mix.sg = static_cast<double>(good) / total;
    mix.so = static_cast<double>(other) / total;
    return mix;
}

} // namespace l0vliw::workloads
