#include "workloads/registry.hh"

#include "common/logging.hh"
#include "workloads/synthetic.hh"

namespace l0vliw::workloads
{

namespace
{

const WorkloadRegistry::Factory *
findIn(const std::vector<std::pair<std::string, WorkloadRegistry::Factory>>
           &factories,
       const std::string &name)
{
    for (const auto &kv : factories)
        if (kv.first == name)
            return &kv.second;
    return nullptr;
}

} // namespace

void
WorkloadRegistry::add(const std::string &name, Factory factory)
{
    if (contains(name))
        fatal("workload '%s' registered twice", name.c_str());
    order_.push_back(name);
    factories_.emplace_back(name, std::move(factory));
}

void
WorkloadRegistry::addAlias(const std::string &alias,
                           const std::string &name)
{
    if (contains(alias))
        fatal("workload alias '%s' registered twice", alias.c_str());
    if (!findIn(factories_, name))
        fatal("alias '%s' targets unknown workload '%s'", alias.c_str(),
              name.c_str());
    aliases_.emplace_back(alias, name);
}

bool
WorkloadRegistry::contains(const std::string &name) const
{
    if (findIn(factories_, name))
        return true;
    for (const auto &kv : aliases_)
        if (kv.first == name)
            return true;
    return false;
}

std::optional<Benchmark>
WorkloadRegistry::tryResolve(const std::string &label) const
{
    if (const Factory *f = findIn(factories_, label))
        return (*f)();
    for (const auto &kv : aliases_)
        if (kv.first == label)
            if (const Factory *f = findIn(factories_, kv.second))
                return (*f)();
    return makeSyntheticWorkload(label);
}

Benchmark
WorkloadRegistry::resolve(const std::string &label) const
{
    std::optional<Benchmark> bench = tryResolve(label);
    if (!bench)
        fatal("unknown benchmark '%s' (try a Mediabench name, "
              "stream-<ops>, stride-<s>x<ops>, stencil2d-<w>, "
              "reduce-<fan>, pchase-<s>, rand-s<seed>-<ops>)",
              label.c_str());
    return *bench;
}

WorkloadRegistry &
workloadRegistry()
{
    static WorkloadRegistry *reg = [] {
        auto *r = new WorkloadRegistry;
        for (const auto &name : benchmarkNames())
            r->add(name, [name] { return makeBenchmark(name); });
        // One canonical instance per synthetic family; every other
        // label of the grammar resolves parametrically.
        for (const auto &label : syntheticFamilyLabels())
            r->add(label, [label] {
                return *makeSyntheticWorkload(label);
            });
        return r;
    }();
    return *reg;
}

} // namespace l0vliw::workloads
