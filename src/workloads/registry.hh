/**
 * @file
 * The workload registry: every benchmark factory registered under its
 * label, symmetric to driver::archRegistry() — experiment specs name
 * both sides of the (benchmark, architecture) grid by string.
 *
 * Besides the explicitly registered labels (the 13 Mediabench models
 * plus one canonical instance of each synthetic family), the registry
 * understands the parametric synthetic-family grammar, so any label
 * makeSyntheticWorkload() accepts resolves to its generator:
 *
 *   stream-<ops> | stride-<s>x<ops> | stencil2d-<w> | reduce-<fan>
 *   | pchase-<s> | rand-s<seed>-<ops>
 *
 * Resolution is deterministic: the same label always yields a
 * bit-identical benchmark model. The registry is process-global;
 * registration happens at first use, resolution is read-only and safe
 * to call concurrently once registration stops.
 */

#ifndef L0VLIW_WORKLOADS_REGISTRY_HH
#define L0VLIW_WORKLOADS_REGISTRY_HH

#include <functional>
#include <optional>
#include <string>
#include <vector>

#include "workloads/workload.hh"

namespace l0vliw::workloads
{

/** Label-to-factory registry of benchmark models. */
class WorkloadRegistry
{
  public:
    using Factory = std::function<Benchmark()>;

    /** Register @p factory under @p name (fatal on duplicates). */
    void add(const std::string &name, Factory factory);

    /** Register @p alias as another name for registered @p name. */
    void addAlias(const std::string &alias, const std::string &name);

    /** True if @p name is explicitly registered (aliases included). */
    bool contains(const std::string &name) const;

    /**
     * Resolve @p label: a registered name or alias, else the
     * parametric synthetic-family grammar. Empty on unknown labels.
     */
    std::optional<Benchmark> tryResolve(const std::string &label) const;

    /** tryResolve(), but fatal on unknown labels. */
    Benchmark resolve(const std::string &label) const;

    /** The registered canonical labels, in registration order. */
    const std::vector<std::string> &names() const { return order_; }

  private:
    std::vector<std::string> order_;
    std::vector<std::pair<std::string, Factory>> factories_;
    std::vector<std::pair<std::string, std::string>> aliases_;
};

/**
 * The process-wide registry, pre-seeded with the Mediabench suite and
 * the canonical synthetic-family instances.
 */
WorkloadRegistry &workloadRegistry();

} // namespace l0vliw::workloads

#endif // L0VLIW_WORKLOADS_REGISTRY_HH
