/**
 * @file
 * Dynamic stride classification (the S / SG / SO columns of Table 1).
 *
 * A dynamic memory access is "strided" when the compiler derived a
 * static stride for it; strided accesses are "good" (SG) when the
 * stride is 0 or +-1 element at the original (pre-unroll) loop level —
 * the patterns served by the mapping and prefetch hints — and "other"
 * (SO) otherwise. Weights are dynamic: trips x invocations per loop.
 */

#ifndef L0VLIW_WORKLOADS_STRIDE_MIX_HH
#define L0VLIW_WORKLOADS_STRIDE_MIX_HH

#include "workloads/workload.hh"

namespace l0vliw::workloads
{

/** Measured dynamic stride mix of a benchmark model. */
struct StrideMix
{
    double s = 0;   ///< fraction of dynamic accesses with a stride
    double sg = 0;  ///< fraction with a "good" stride (0 / +-1)
    double so = 0;  ///< fraction with another stride
};

/** Classify every dynamic access of @p bench. */
StrideMix measureStrideMix(const Benchmark &bench);

} // namespace l0vliw::workloads

#endif // L0VLIW_WORKLOADS_STRIDE_MIX_HH
