/**
 * @file
 * Benchmark models: weighted collections of inner loops.
 *
 * The paper evaluates 13 Mediabench programs compiled with IMPACT; the
 * inner loops it modulo-schedules cover ~80% of the dynamic stream.
 * Our models reproduce, per benchmark, the properties those loops
 * expose to the compiler and the memory system: the dynamic stride mix
 * of Table 1 (S/SG/SO), the unroll behaviour of Figure 6, working-set
 * sizes (L1 behaviour), recurrence structure, and the pathologies the
 * text singles out (jpegdec's prefetch evictions, epicdec/rasta's
 * small-II late prefetches, pegwit*'s L1 misses, and the conservative
 * dependence sets of epicdec/pgpdec/pgpenc/rasta that code
 * specialization removes).
 */

#ifndef L0VLIW_WORKLOADS_WORKLOAD_HH
#define L0VLIW_WORKLOADS_WORKLOAD_HH

#include <string>
#include <vector>

#include "ir/loop.hh"

namespace l0vliw::workloads
{

/** One inner loop plus its dynamic weight. */
struct LoopInstance
{
    ir::Loop loop;
    std::uint64_t trips = 256;      ///< iterations per invocation
    std::uint64_t invocations = 8;  ///< times the loop is entered
    /** Apply code specialization: strip conservative memory edges and
     *  charge the runtime-check overhead per invocation. */
    bool specialize = false;
};

/** Paper-reported reference values, used by the bench tables. */
struct PaperReference
{
    double s = 0;       ///< Table 1 "S": % strided dynamic accesses
    double sg = 0;      ///< Table 1 "SG": good strides (0 / +-1)
    double so = 0;      ///< Table 1 "SO": other strides
    double unroll = 0;  ///< Figure 6 average unrolling factor
};

/** A benchmark model. */
struct Benchmark
{
    std::string name;
    std::vector<LoopInstance> loops;
    PaperReference paper;
};

/** Build one benchmark model by name (fatal on unknown name). */
Benchmark makeBenchmark(const std::string &name);

/** The full 13-benchmark suite in the paper's order. */
std::vector<Benchmark> mediabenchSuite();

/** The paper's benchmark order. */
const std::vector<std::string> &benchmarkNames();

} // namespace l0vliw::workloads

#endif // L0VLIW_WORKLOADS_WORKLOAD_HH
