#include "workloads/synthetic.hh"

#include <cstdlib>
#include <limits>

#include "common/rng.hh"
#include "workloads/kernels.hh"

namespace l0vliw::workloads
{

namespace
{

/** Parse a decimal integer; false unless the whole string matches. */
bool
parseLong(const std::string &s, long &out)
{
    if (s.empty())
        return false;
    char *end = nullptr;
    long v = std::strtol(s.c_str(), &end, 10);
    if (end != s.c_str() + s.size())
        return false;
    out = v;
    return true;
}

bool
parseLongIn(const std::string &s, long lo, long hi, long &out)
{
    return parseLong(s, out) && out >= lo && out <= hi;
}

/** Log-depth combine tree over @p inputs; returns the root. */
OpId
combineTree(ir::Loop &loop, std::vector<OpId> inputs)
{
    while (inputs.size() > 1) {
        std::vector<OpId> next;
        for (std::size_t i = 0; i + 1 < inputs.size(); i += 2) {
            ir::Operation comb;
            comb.kind = ir::OpKind::IntAlu;
            comb.tag = "comb";
            OpId id = loop.addOp(comb);
            loop.addRegEdge(inputs[i], id);
            loop.addRegEdge(inputs[i + 1], id);
            next.push_back(id);
        }
        if (inputs.size() % 2)
            next.push_back(inputs.back());
        inputs = std::move(next);
    }
    return inputs[0];
}

Benchmark
singleLoop(ir::Loop loop, std::uint64_t trips, std::uint64_t invocations)
{
    Benchmark b;
    b.name = loop.name();
    b.loops.push_back({std::move(loop), trips, invocations});
    return b;
}

// ---- family builders ----

/** stream-<ops>: the canonical unit-stride map/filter. */
Benchmark
makeStream(const std::string &label, long ops)
{
    AddressSpace as;
    StreamParams p;
    p.elemSize = 4;
    p.loadStreams = 2;
    p.storeStreams = 1;
    p.intOps = static_cast<int>(ops);
    p.arrayBytes = 16384;
    return singleLoop(streamMap(as, label, p), 512, 12);
}

/** stride-<s>x<ops>: a non-unit-stride walk (SO accesses when the
 *  stride exceeds an L0 subblock, SG at 1). */
Benchmark
makeStride(const std::string &label, long stride, long ops)
{
    AddressSpace as;
    ColumnParams p;
    p.elemSize = 4;
    p.strideElems = static_cast<int>(stride);
    p.streams = 2;
    p.intOps = static_cast<int>(ops);
    p.arrayBytes = 32768;
    return singleLoop(columnWalk(as, label, p), 256, 16);
}

/**
 * stencil2d-<w>: taps at element offsets -w..+w plus one row above and
 * below (row = 64 elements). All taps are unit-stride streams over the
 * same array with different offsets, so an L0 entry filled for one tap
 * is reused by its 2w neighbours — the reuse-distance axis.
 */
Benchmark
makeStencil2d(const std::string &label, long w)
{
    constexpr long kRowElems = 64;
    ir::Loop loop(label);
    AddressSpace as;
    int x = loop.addArray({label + "_x", as.alloc(8192), 8192});
    std::vector<OpId> taps;
    for (long j = -w; j <= w; ++j)
        taps.push_back(loop.addOp(makeLoad(
            x, 4, 1, j, "tap" + std::to_string(j + w))));
    for (long r : {-kRowElems, kRowElems})
        taps.push_back(loop.addOp(makeLoad(
            x, 4, 1, r, r < 0 ? "row_up" : "row_dn")));
    OpId tail = chainAlu(loop, combineTree(loop, std::move(taps)), 2, 0);
    int y = loop.addArray({label + "_y", as.alloc(8192), 8192});
    OpId st = loop.addOp(
        makeStore(y, 4, 1, 0, "st"));
    loop.addRegEdge(tail, st);
    loop.validate();
    return singleLoop(std::move(loop), 256, 12);
}

/** reduce-<fan>: <fan> streamed inputs folded into a load->chain->
 *  store memory recurrence, so the accumulator load's L0-vs-L1
 *  latency bounds the II while <fan> scales the memory-slot
 *  pressure — the fan-in axis. */
Benchmark
makeReduce(const std::string &label, long fan)
{
    AddressSpace as;
    RecurrenceParams p;
    p.elemSize = 4;
    p.lookback = 1;
    p.chainOps = 1;
    p.extraLoads = static_cast<int>(fan);
    p.arrayBytes = 8192;
    return singleLoop(memRecurrence(as, label, p), 384, 10);
}

/**
 * pchase-<s>: a pointer chase — the load's address depends on the
 * value the previous iteration loaded (a distance-1 register
 * self-dependence), so iterations serialize on the load latency; the
 * footprint advances <s> elements per step. The limit case of the
 * dependence-chain axis: RecMII == assigned load latency.
 */
Benchmark
makePchase(const std::string &label, long stride)
{
    ir::Loop loop(label);
    AddressSpace as;
    std::uint64_t bytes =
        static_cast<std::uint64_t>(stride) * 4 * 256 + 4096;
    int x = loop.addArray({label + "_x", as.alloc(bytes), bytes});
    OpId ld = loop.addOp(
        makeLoad(x, 4, stride, 0, "chase"));
    loop.addRegEdge(ld, ld, 1); // next address = f(loaded value)
    OpId tail = chainAlu(loop, ld, 1, 0);
    int y = loop.addArray({label + "_y", as.alloc(4096), 4096});
    OpId st = loop.addOp(
        makeStore(y, 4, 1, 0, "st"));
    loop.addRegEdge(tail, st);
    loop.validate();
    return singleLoop(std::move(loop), 256, 10);
}

/**
 * rand-s<seed>-<ops>: a random DDG drawn from Rng(seed) — random mix
 * of loads (strided and irregular), ALU chains, and stores over
 * per-op arrays, with forward same-iteration register edges, plus an
 * optional accumulator recurrence. Stores write dedicated output
 * arrays so the random graph never needs memory-dependence edges.
 */
Benchmark
makeRand(const std::string &label, std::uint64_t seed, long ops)
{
    static const long kStrides[] = {0, 1, 1, 1, 2, 4, 8, -1};
    ir::Loop loop(label);
    AddressSpace as;
    Rng rng(seed);
    std::vector<OpId> values; // ops whose results edges may consume
    int arrays = 0;
    auto newArray = [&](const char *what) {
        std::uint64_t bytes = 1024ULL << rng.below(5); // 1-16 KiB
        return loop.addArray(
            {label + "_" + what + std::to_string(arrays++),
             as.alloc(bytes), bytes});
    };
    // First op is always a load so every consumer has a producer.
    long nloads = 1 + static_cast<long>(rng.below(
                      static_cast<std::uint64_t>(ops + 2) / 3));
    for (long i = 0; i < nloads; ++i) {
        bool irregular = rng.chance(0.2);
        long stride =
            irregular ? 0 : kStrides[rng.below(8)];
        OpId ld = loop.addOp(makeLoad(
            newArray("in"), 4, stride,
            static_cast<long>(rng.below(8)),
            "ld" + std::to_string(i), !irregular));
        if (irregular && !values.empty()) // index from a prior value
            loop.addRegEdge(values[rng.below(values.size())], ld);
        values.push_back(ld);
    }
    long nalu = ops - nloads;
    for (long i = 0; i < nalu; ++i) {
        ir::Operation alu;
        alu.kind = rng.chance(0.15) ? ir::OpKind::IntMul
                                    : ir::OpKind::IntAlu;
        alu.tag = "op" + std::to_string(i);
        OpId id = loop.addOp(alu);
        loop.addRegEdge(values[rng.below(values.size())], id);
        if (rng.chance(0.5))
            loop.addRegEdge(values[rng.below(values.size())], id);
        // Occasionally close a cross-iteration recurrence.
        if (rng.chance(0.1))
            loop.addRegEdge(id, id, 1 + static_cast<int>(rng.below(2)));
        values.push_back(id);
    }
    long nstores = 1 + static_cast<long>(rng.below(2));
    for (long i = 0; i < nstores; ++i) {
        OpId st = loop.addOp(makeStore(
            newArray("out"), 4, kStrides[1 + rng.below(7)], 0,
            "st" + std::to_string(i)));
        loop.addRegEdge(values[rng.below(values.size())], st);
    }
    loop.validate();
    return singleLoop(std::move(loop),
                      128 + 32 * rng.below(8), 6 + rng.below(6));
}

} // namespace

std::optional<Benchmark>
makeSyntheticWorkload(const std::string &label)
{
    auto param = [&](const char *prefix) -> std::optional<std::string> {
        std::size_t n = std::string(prefix).size();
        if (label.rfind(prefix, 0) != 0)
            return std::nullopt;
        return label.substr(n);
    };

    long a = 0, b = 0;
    if (auto p = param("stream-")) {
        if (parseLongIn(*p, 1, 64, a))
            return makeStream(label, a);
    } else if (auto p = param("stride-")) {
        std::size_t x = p->find('x');
        if (x != std::string::npos
            && parseLongIn(p->substr(0, x), 1, 1024, a)
            && parseLongIn(p->substr(x + 1), 0, 64, b))
            return makeStride(label, a, b);
    } else if (auto p = param("stencil2d-")) {
        if (parseLongIn(*p, 1, 16, a))
            return makeStencil2d(label, a);
    } else if (auto p = param("reduce-")) {
        if (parseLongIn(*p, 1, 32, a))
            return makeReduce(label, a);
    } else if (auto p = param("pchase-")) {
        if (parseLongIn(*p, 1, 1024, a))
            return makePchase(label, a);
    } else if (auto p = param("rand-s")) {
        std::size_t dash = p->find('-');
        if (dash != std::string::npos
            && parseLongIn(p->substr(0, dash), 0,
                           std::numeric_limits<long>::max(), a)
            && parseLongIn(p->substr(dash + 1), 2, 128, b))
            return makeRand(label, static_cast<std::uint64_t>(a), b);
    }
    return std::nullopt;
}

const std::vector<std::string> &
syntheticFamilyLabels()
{
    static const std::vector<std::string> labels = {
        "stream-4",  "stride-16x2", "stencil2d-2",
        "reduce-8",  "pchase-64",   "rand-s1-12",
    };
    return labels;
}

} // namespace l0vliw::workloads
