/**
 * @file
 * Parametric synthetic workload families.
 *
 * The Mediabench models in mediabench.cc reproduce the paper's eight
 * figures from thirteen fixed programs; the synthetic families probe
 * the L0 design across the whole access-pattern space instead. Each
 * family is a label grammar whose parameters control one axis the L0
 * machinery cares about — stride, reuse distance, fan-in, dependence-
 * chain length — and every label expands deterministically: the same
 * label always produces bit-identical ir::Loop kernels (the rand
 * family draws everything from an Rng seeded by its label).
 *
 * Grammar (all integers decimal; bounds in makeSyntheticWorkload):
 *
 *   stream-<ops>        unit-stride map, <ops>-deep ALU chain
 *   stride-<s>x<ops>    walk with stride <s> elements, <ops> ALU ops
 *   stencil2d-<w>       2D stencil: taps at -<w>..+<w> and +-1 row
 *   reduce-<fan>        <fan> input streams into a memory recurrence
 *   pchase-<s>          address-serialized load chain, stride <s>
 *   rand-s<seed>-<ops>  seeded random DDG of <ops> operations
 *
 * The labels resolve through workloadRegistry() exactly like the
 * "l0-..." grammar resolves through archRegistry().
 */

#ifndef L0VLIW_WORKLOADS_SYNTHETIC_HH
#define L0VLIW_WORKLOADS_SYNTHETIC_HH

#include <optional>
#include <string>
#include <vector>

#include "workloads/workload.hh"

namespace l0vliw::workloads
{

/**
 * Expand a synthetic-family label into a benchmark model, or empty
 * when @p label does not match the grammar (malformed numbers and
 * out-of-range parameters are "no match", mirroring the arch
 * registry's treatment of bad "l0-..." labels). Deterministic: the
 * same label always returns a bit-identical model.
 */
std::optional<Benchmark> makeSyntheticWorkload(const std::string &label);

/**
 * One canonical label per synthetic family, in grammar order — the
 * instances workloadRegistry() pre-registers and the sweep drivers
 * use as anchors.
 */
const std::vector<std::string> &syntheticFamilyLabels();

} // namespace l0vliw::workloads

#endif // L0VLIW_WORKLOADS_SYNTHETIC_HH
